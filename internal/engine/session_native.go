package engine

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"livetm/internal/model"
	"livetm/internal/monitor"
	"livetm/internal/native"
	"livetm/internal/record"
	"livetm/internal/telemetry"
)

// Live-monitoring plumbing constants.
const (
	// liveStreamCap bounds the event channel between the recording
	// workers and the monitor pump: backpressure, not loss. Sized so
	// short checker pauses (a segment search) do not stall producers —
	// the cap is the live path's memory/latency trade: smaller means
	// earlier backpressure and faster stops, larger means less stall.
	liveStreamCap = 16384
	// liveRebiasEvery is how often (in observed events) the pump feeds
	// measured starvation back into the backoff policy.
	liveRebiasEvery = 256
	// liveSegmentTxns is the live checker's default per-segment
	// transaction budget (SessionConfig.LiveSegmentTxns overrides).
	liveSegmentTxns = 48
	// liveQuiesceEvery is the default cut interval of a live session
	// when SessionConfig.QuiesceEvery is 0: real quiescent cuts keep
	// the live checker exact; the bounded-overlap fallback only has to
	// absorb the windows that outrun the budget between cuts.
	liveQuiesceEvery = 4
	// recorderHint pre-sizes each worker's first event chunk. Sessions
	// have no round budget to derive it from; the chunked buffers grow
	// (or recycle) process-locally either way.
	recorderHint = 1024
)

// liveState couples one live session's monitor, backoff feedback loop
// and stop signal. The pump goroutine owns the monitor until done
// closes; violation is written before stop closes and read after done,
// so the channels order the accesses.
type liveState struct {
	mon       *monitor.Monitor
	stop      chan struct{}
	done      chan struct{}
	violation error
}

// runPump feeds the live stream through the shared monitor pump
// (record.Resequencer order restoration + monitor.Observe) while the
// session executes. A terminal safety error closes the stop channel —
// the mid-flight cancellation — and the measured starvation rebiases
// the backoff policy every liveRebiasEvery events. The starvation
// snapshot is sized for MaxWorkers but truncated to the admitted
// prefix before rebiasing: provisioned-but-idle slots would otherwise
// drag the mean down and classify every active worker as starved.
func (s *nativeSession) runPump() {
	ls := s.live
	defer close(ls.done)
	pump := &monitor.Pump{
		Mon:   ls.mon,
		Procs: s.cfg.MaxWorkers,
		OnViolation: func(err error) {
			ls.violation = err
			close(ls.stop)
		},
		RebiasEvery: liveRebiasEvery,
		Rebias: func(starvation []int) {
			if n := int(s.admitted.Load()); n < len(starvation) {
				starvation = starvation[:n]
			}
			s.bo.Rebias(starvation)
			// The pump goroutine owns the monitor, so the non-terminal
			// class read here is race-free; the gauges carry it to any
			// concurrent scraper.
			s.met.syncLive(ls.mon.LivenessClassNow(), starvation, s.bo.BiasSnapshot())
		},
	}
	pump.Run(s.rec.Stream())
}

// sessionJob is one accepted submission.
type sessionJob struct {
	body Body
	done func(error)
}

// nativeSession is the native-substrate session backend: a pool of
// real goroutines pulling jobs from a shared lane plus per-worker
// pinned lanes, with the recorder, live monitor and starvation-aware
// backoff of the old batch Run now running for the session's lifetime.
//
// The lanes are condition-guarded queues, not channels, for one
// deadlock-freedom property: an asynchronous submission (Submit, the
// only kind a result callback may issue) never blocks, so a worker
// running callbacks can always return to draining. Only Exec blocks —
// for backpressure against QueueDepth — and Exec is forbidden in
// callbacks, so the pool as a whole always makes progress.
type nativeSession struct {
	cfg   SessionConfig
	tm    native.TM
	obsTM native.ObservableTM
	bo    *native.Backoff
	rec   *record.Recorder
	live  *liveState
	// quiesce is the per-worker completed-transaction interval between
	// forced quiescent cuts (0 = never). Each shard group drives its
	// own cadence on its own counter — one cut per quiesce completed
	// transactions of every admitted worker in the group — so admitting
	// workers to one shard does not stretch the cut interval (and with
	// it the live checker's memory bound) on the others.
	quiesce int
	shards  int
	cutTick []atomic.Int64 // per shard group

	// cutMu[k] is held shared around every transaction shard k's
	// workers run; a quiescent cut on shard k takes it exclusively, so
	// at the instant the cut holds the lock no shard-k transaction is
	// in flight and the recorded stream has a shard-local cut at that
	// stamp. Idle workers hold nothing, so — unlike the batch barrier —
	// a cut never waits on a worker that has no work. Once spanning is
	// set (some transaction touched a variable outside its worker's
	// shard), cuts sweep every shard's lock in index order instead — a
	// global pause; workers hold at most one read lock, so the ordered
	// sweep cannot deadlock.
	cutMu    []sync.RWMutex
	spanning atomic.Bool

	// met holds every counter behind SessionStats plus the registered
	// observability extras; see sessionMetrics. Always non-nil.
	met *sessionMetrics

	mu        sync.Mutex
	workCond  *sync.Cond // work arrived, or the session closed
	roomCond  *sync.Cond // a lane drained below QueueDepth, or closed
	sharedQ   []*sessionJob
	pinnedQ   [][]*sessionJob
	closed    bool
	closeDone chan struct{} // the winning Close finished finalizing

	admitted atomic.Int32
	admitMu  sync.Mutex
	wg       sync.WaitGroup

	stopped atomic.Bool

	drainMu   sync.Mutex
	drainCond *sync.Cond
	drainers  atomic.Int32

	hist model.History
}

// openNativeSession starts the pool. cfg has defaults applied and is
// validated for the native substrate.
func openNativeSession(info native.Info, cfg SessionConfig) (*nativeSession, error) {
	tm, err := info.New(cfg.Vars)
	if err != nil {
		return nil, err
	}
	obsTM, observable := tm.(native.ObservableTM)
	recording := cfg.Record || cfg.Live
	if recording && !observable {
		return nil, errors.New("engine: " + info.Name + " does not expose linearization-point hooks")
	}
	s := &nativeSession{
		cfg:       cfg,
		tm:        tm,
		bo:        native.NewBackoff(cfg.MaxWorkers),
		pinnedQ:   make([][]*sessionJob, cfg.MaxWorkers),
		closeDone: make(chan struct{}),
		shards:    cfg.Shards,
		cutTick:   make([]atomic.Int64, cfg.Shards),
		cutMu:     make([]sync.RWMutex, cfg.Shards),
		met:       newSessionMetrics(cfg.Telemetry, info.Name, cfg.MaxWorkers, cfg.Shards, cfg.Live),
	}
	if observable {
		s.obsTM = obsTM
	}
	if cfg.Telemetry != nil && s.obsTM != nil {
		s.met.tx = native.NewTxMetrics(cfg.Telemetry, info.Name)
	}
	s.workCond = sync.NewCond(&s.mu)
	s.roomCond = sync.NewCond(&s.mu)
	s.drainCond = sync.NewCond(&s.drainMu)
	if cfg.Live {
		segTxns := cfg.LiveSegmentTxns
		if segTxns == 0 {
			segTxns = liveSegmentTxns
		}
		procs := make([]model.Proc, cfg.Workers)
		for i := range procs {
			procs[i] = model.Proc(i + 1)
		}
		mcfg := monitor.Config{
			SegmentTxns: segTxns, TailWindow: cfg.LiveTailWindow, Procs: procs, Approx: true,
			CheckerMetrics: s.met.checker,
		}
		if cfg.Shards > 1 {
			// Mirror the session's contiguous shard assignment so the
			// checker lanes line up with the cut groups (Proc is
			// 1-based: worker p records as Proc p+1).
			vars, shards, maxW := cfg.Vars, cfg.Shards, cfg.MaxWorkers
			mcfg.Shards = shards
			mcfg.VarShard = func(v model.TVar) int { return int(v) * shards / vars }
			mcfg.ProcShard = func(p model.Proc) int { return (int(p) - 1) * shards / maxW }
		}
		mon, err := monitor.New(mcfg)
		if err != nil {
			return nil, err
		}
		s.live = &liveState{mon: mon, stop: make(chan struct{}), done: make(chan struct{})}
		ropts := record.Options{
			CapacityHint:   recorderHint,
			StreamCapacity: liveStreamCap,
			Stop:           s.live.stop,
			// Without Record the stream is the only consumer, so the
			// per-process chunk rings recycle and allocation stays flat.
			DropStreamed: !cfg.Record,
			Metrics:      s.met.rec,
		}
		if cfg.Shards > 1 {
			ropts.ShardOf = func(p model.Proc) int { return s.shardOfWorker(int(p) - 1) }
		}
		s.rec = record.NewWithOptions(cfg.MaxWorkers, ropts)
		go s.runPump()
	} else if cfg.Record {
		s.rec = record.NewWithOptions(cfg.MaxWorkers, record.Options{
			CapacityHint: recorderHint,
			Metrics:      s.met.rec,
		})
	}
	s.quiesce = cfg.QuiesceEvery
	if cfg.Live && s.quiesce == 0 {
		s.quiesce = liveQuiesceEvery
	}
	if s.quiesce < 0 { // live with cuts explicitly disabled
		s.quiesce = 0
	}
	if !recording {
		s.quiesce = 0
	}
	s.spawn(cfg.Workers)
	return s, nil
}

// spawn starts n more workers; the caller holds admitMu or is Open.
func (s *nativeSession) spawn(n int) {
	base := int(s.admitted.Load())
	for i := 0; i < n; i++ {
		p := base + i
		s.wg.Add(1)
		go s.worker(p)
	}
	s.admitted.Store(int32(base + n))
	s.met.workers.Set(int64(base + n))
}

func (s *nativeSession) submit(ctx context.Context, worker int, body Body, done func(error), demand bool) error {
	if worker != AnyWorker && (worker < 0 || worker >= int(s.admitted.Load())) {
		return fmt.Errorf("engine: worker %d not admitted (have %d)", worker, s.admitted.Load())
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if demand && s.laneLenLocked(worker) >= s.cfg.QueueDepth {
		// Only blocking submissions (Exec) feel QueueDepth: they come
		// from client goroutines that may wait (bounded by ctx).
		// Asynchronous ones must never block — a worker's result
		// callback may be the caller. The ctx watcher starts lazily:
		// the common uncontended path pays no goroutine.
		stop := watchCtx(ctx, func() {
			s.mu.Lock()
			s.roomCond.Broadcast()
			s.mu.Unlock()
		})
		defer stop()
		for !s.closed && s.laneLenLocked(worker) >= s.cfg.QueueDepth {
			if err := ctx.Err(); err != nil {
				return err
			}
			s.roomCond.Wait()
		}
	}
	if s.closed {
		return ErrClosed
	}
	if !demand && s.cfg.MaxQueue > 0 && s.laneLenLocked(worker) >= s.cfg.MaxQueue {
		// The admission cap: a Submit flood is refused, never queued
		// without bound — and never blocked, so result callbacks that
		// submit follow-up work stay deadlock-free.
		return ErrOverloaded
	}
	s.met.submitted.Inc()
	j := &sessionJob{body: body, done: done}
	if worker == AnyWorker {
		s.sharedQ = append(s.sharedQ, j)
		s.met.queueShared.Add(1)
	} else {
		s.pinnedQ[worker] = append(s.pinnedQ[worker], j)
		s.met.queuePinned.Add(1)
	}
	// A pinned job must wake its specific worker, so broadcast rather
	// than signal; spuriously woken workers go straight back to sleep.
	s.workCond.Broadcast()
	return nil
}

func (s *nativeSession) laneLenLocked(worker int) int {
	if worker == AnyWorker {
		return len(s.sharedQ)
	}
	return len(s.pinnedQ[worker])
}

// takeLocked pops worker p's next job, alternating which lane it
// prefers on successive takes: a worker whose pinned lane is kept
// permanently full must still serve the shared lane every other
// transaction, so AnyWorker submissions cannot starve behind pinned
// traffic (and vice versa). Caller holds mu.
func (s *nativeSession) takeLocked(p int, tick int) *sessionJob {
	pinned := len(s.pinnedQ[p])
	j, ok := takeAlternating(&s.pinnedQ[p], &s.sharedQ, tick)
	if !ok {
		return nil
	}
	if len(s.pinnedQ[p]) < pinned {
		s.met.queuePinned.Add(-1)
	} else {
		s.met.queueShared.Add(-1)
	}
	return j
}

// worker is one pool goroutine: it serves its pinned lane and the
// shared lane until Close seals and drains them.
func (s *nativeSession) worker(p int) {
	defer s.wg.Done()
	var obs native.Observer
	if s.rec != nil {
		obs = s.rec.Log(model.Proc(p + 1))
	}
	var stop <-chan struct{}
	if s.live != nil {
		stop = s.live.stop
	}
	for tick := 0; ; tick++ {
		s.mu.Lock()
		var j *sessionJob
		for {
			if j = s.takeLocked(p, tick); j != nil || s.closed {
				break
			}
			s.workCond.Wait()
		}
		if j == nil { // closed with both lanes drained
			s.mu.Unlock()
			return
		}
		s.roomCond.Broadcast()
		s.mu.Unlock()

		var res error
		if h := s.met.execLat; h != nil {
			start := time.Now()
			res = s.execute(p, j.body, obs, stop)
			h.Observe(time.Since(start).Nanoseconds())
		} else {
			res = s.execute(p, j.body, obs, stop)
		}
		switch {
		case res == nil:
			s.met.commits[p].Inc()
		case errors.Is(res, ErrNoCommit):
			s.met.noCommits.Inc()
		case errors.Is(res, native.ErrStopped):
			s.stopped.Store(true)
			res = ErrStopped
		}
		if s.quiesce > 0 {
			// One cut per QuiesceEvery completed transactions of every
			// admitted worker in this worker's shard group — the batch
			// barrier's cadence, driven by a shared group counter since
			// workers are not in lockstep, and group-local so admission
			// into one shard does not stretch the others' intervals.
			k := s.shardOfWorker(p)
			interval := int64(s.quiesce) * int64(s.groupSize(k))
			if interval > 0 && s.cutTick[k].Add(1)%interval == 0 {
				s.forceCut(k)
			}
		}
		if j.done != nil {
			j.done(res)
		}
		s.met.completed.Inc()
		if s.drainers.Load() > 0 {
			s.drainMu.Lock()
			s.drainCond.Broadcast()
			s.drainMu.Unlock()
		}
	}
}

// execute runs one submission as a transaction on worker p, retrying
// through the native retry loop until commit, decline, stop, or a
// terminal body error.
func (s *nativeSession) execute(p int, body Body, obs native.Observer, stop <-chan struct{}) error {
	if stop != nil {
		select {
		case <-stop:
			return native.ErrStopped
		default:
		}
	}
	home := s.shardOfWorker(p)
	fn := func(tx native.Txn) error {
		var h Tx = nativeTx{tx: tx}
		if s.shards > 1 {
			h = &spanTx{tx: tx, s: s, home: home}
		}
		if err := body(h); errors.Is(err, ErrAborted) {
			// Hand the abort back to the native retry loop.
			return native.ErrAborted
		} else {
			return err
		}
	}
	if s.quiesce > 0 {
		mu := &s.cutMu[home]
		mu.RLock()
		defer mu.RUnlock()
	}
	if s.obsTM != nil {
		return s.obsTM.AtomicallyOpts(native.RunOpts{
			Observer: obs, Stop: stop, Backoff: s.bo, Proc: p,
			Metrics: s.met.tx,
		}, fn)
	}
	return s.tm.Atomically(fn)
}

// shardOfVar maps variable v to its shard: contiguous equal splits, so
// a disjoint workload's per-process variable blocks align with whole
// shards. Must agree with the VarShard the monitor was wired with.
func (s *nativeSession) shardOfVar(v int) int { return v * s.shards / s.cfg.Vars }

// shardOfWorker maps worker p to its shard group: contiguous blocks of
// MaxWorkers/Shards workers, lining up with shardOfVar's split when
// the worker and variable counts are proportional.
func (s *nativeSession) shardOfWorker(p int) int { return p * s.shards / s.cfg.MaxWorkers }

// groupSize is the number of admitted workers in shard group k. When
// Workers < MaxWorkers the admitted prefix fills low groups first, so
// trailing groups may be smaller (or empty, taking no cuts) until
// AddWorkers grows into them.
func (s *nativeSession) groupSize(k int) int {
	g := s.cfg.MaxWorkers / s.shards
	n := int(s.admitted.Load()) - k*g
	if n > g {
		n = g
	}
	if n < 0 {
		n = 0
	}
	return n
}

// spanTx wraps a sharded session's per-attempt handle to notice the
// first access outside the worker's home shard. From then on the
// session's quiescent cuts go global: a shard-local pause can no
// longer certify quiescence once transactions span shards. The checker
// side stays sound either way (spanning transactions are merged across
// lanes); the flag only decides how much the cuts pause.
type spanTx struct {
	tx   native.Txn
	s    *nativeSession
	home int
	seen bool
}

func (t *spanTx) note(i int) {
	if !t.seen && t.s.shardOfVar(i) != t.home {
		t.seen = true
		t.s.spanning.Store(true)
	}
}

func (t *spanTx) Read(i int) (int64, error) {
	t.note(i)
	v, err := t.tx.Read(i)
	if errors.Is(err, native.ErrAborted) {
		return 0, ErrAborted
	}
	return v, err
}

func (t *spanTx) Write(i int, v int64) error {
	t.note(i)
	if err := t.tx.Write(i, v); errors.Is(err, native.ErrAborted) {
		return ErrAborted
	} else {
		return err
	}
}

// forceCut takes shard k's cut lock exclusively: new shard-k
// transactions wait, in-flight ones finish, and the instant the lock
// is held the recorded stream has a quiescent cut on that shard — the
// streaming checker's flush point. After a spanning transaction the
// cut degrades to a global pause: every shard's lock, swept in index
// order, held together for one instant.
func (s *nativeSession) forceCut(k int) {
	start := time.Now()
	if s.spanning.Load() {
		for i := range s.cutMu {
			s.cutMu[i].Lock()
		}
		for i := range s.cutMu {
			s.cutMu[i].Unlock()
		}
	} else {
		s.cutMu[k].Lock()
		//lint:ignore SA2001 the empty critical section is the point:
		// holding the lock exclusively for one instant is the cut.
		s.cutMu[k].Unlock()
	}
	s.met.cutPause[k].Observe(time.Since(start).Nanoseconds())
}

func (s *nativeSession) drain(ctx context.Context) error {
	s.drainers.Add(1)
	defer s.drainers.Add(-1)
	stop := watchCtx(ctx, func() {
		s.drainMu.Lock()
		s.drainCond.Broadcast()
		s.drainMu.Unlock()
	})
	defer stop()
	s.drainMu.Lock()
	defer s.drainMu.Unlock()
	for s.met.completed.Load() != s.met.submitted.Load() {
		if err := ctx.Err(); err != nil {
			return err
		}
		s.drainCond.Wait()
	}
	return nil
}

func (s *nativeSession) stats() SessionStats {
	n := int(s.admitted.Load())
	per := make([]uint64, n)
	var total uint64
	for p := 0; p < n; p++ {
		per[p] = s.met.commits[p].Load()
		total += per[p]
	}
	st := SessionStats{
		Workers:          n,
		Submitted:        s.met.submitted.Load(),
		Completed:        s.met.completed.Load(),
		Commits:          total,
		Aborts:           s.tm.Stats().Aborts,
		NoCommits:        s.met.noCommits.Load(),
		PerWorkerCommits: per,
		Stopped:          s.stopped.Load(),
		BackoffCap:       s.bo.Cap(),
	}
	if s.live != nil {
		st.BackoffBias = s.bo.BiasSnapshot()
	}
	if s.rec != nil {
		st.RecorderChunks = s.rec.Chunks()
		st.Truncated = s.rec.Truncated()
	}
	st.Shards = s.shards
	st.CutLatency = histCutStats(telemetry.Aggregate(s.met.cutPause...))
	if s.shards > 1 {
		st.ShardCuts = make([]CutStats, s.shards)
		for k := range st.ShardCuts {
			st.ShardCuts[k] = histCutStats(s.met.cutPause[k])
		}
	}
	return st
}

func (s *nativeSession) addWorkers(n int) error {
	if n <= 0 {
		return fmt.Errorf("engine: AddWorkers needs a positive count, got %d", n)
	}
	s.admitMu.Lock()
	defer s.admitMu.Unlock()
	// Spawn under mu so admission cannot race Close's wg.Wait: either
	// the workers are registered before closed is set, or the admission
	// is refused.
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if have := int(s.admitted.Load()); have+n > s.cfg.MaxWorkers {
		return fmt.Errorf("engine: %d workers admitted + %d exceeds MaxWorkers %d", have, n, s.cfg.MaxWorkers)
	}
	s.spawn(n)
	s.met.admissions.Add(uint64(n))
	return nil
}

func (s *nativeSession) close() (*monitor.Report, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		// Wait for the winning Close to finish finalizing, so a loser's
		// follow-up History() never races the winner's writes.
		<-s.closeDone
		return nil, ErrClosed
	}
	s.closed = true
	s.workCond.Broadcast()
	s.roomCond.Broadcast()
	s.mu.Unlock()
	defer close(s.closeDone)
	s.wg.Wait()

	var rep *monitor.Report
	var err error
	if s.live != nil {
		s.rec.CloseStream()
		<-s.live.done
		r := s.live.mon.Report()
		rep = &r
		if s.live.violation != nil {
			err = fmt.Errorf("%w: %v", ErrLiveViolation, s.live.violation)
		}
	}
	if s.cfg.Record && s.rec != nil {
		s.hist = s.rec.History()
	}
	return rep, err
}

func (s *nativeSession) history() model.History { return s.hist }
