package engine

import (
	"context"
	"io"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"livetm/internal/telemetry"
)

// requiredFamilies is the family list a live instrumented session must
// expose: one per layer the telemetry tentpole threads through (retry
// loop, session pool, cuts, recorder, checker lanes, monitor).
var requiredFamilies = []string{
	"livetm_tx_starts_total",
	"livetm_tx_commits_total",
	"livetm_tx_aborts_total",
	"livetm_tx_retry_latency_ns",
	"livetm_tx_backoff_wait_ns",
	"livetm_session_submitted_total",
	"livetm_session_completed_total",
	"livetm_session_commits_total",
	"livetm_session_queue_depth",
	"livetm_session_exec_latency_ns",
	"livetm_session_workers",
	"livetm_cut_pause_ns",
	"livetm_recorder_events_total",
	"livetm_recorder_chunks",
	"livetm_checker_segments_total",
	"livetm_checker_lane_lag",
	"livetm_monitor_liveness_class",
	"livetm_monitor_starvation",
	"livetm_backoff_bias",
}

// TestMetricsEndpointUnderLoad scrapes /metrics concurrently with Exec
// traffic and a mid-run AddWorkers admission: every required family
// must be present, monotone counters must never regress between
// scrapes, and scraping must never block a worker (the run completes
// while scrapes are in flight). Run with -race this also proves the
// scrape path reads no session-owned state.
func TestMetricsEndpointUnderLoad(t *testing.T) {
	reg := telemetry.NewRegistry()
	s := openTestSession(t, "native-tl2", SessionConfig{
		Workers: 2, MaxWorkers: 4, Vars: 8,
		Record: true, Live: true, QuiesceEvery: 2,
		Telemetry: reg,
	})
	srv := httptest.NewServer(telemetry.Handler(reg))
	defer srv.Close()

	const rounds = 300
	var wg sync.WaitGroup
	wg.Add(2)
	for w := 0; w < 2; w++ {
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				err := s.ExecOn(context.Background(), w, func(tx Tx) error {
					v, err := tx.Read(w)
					if err != nil {
						return err
					}
					return tx.Write((w+1)%8, v+1)
				})
				if err != nil {
					t.Errorf("exec: %v", err)
					return
				}
				if i == rounds/2 && w == 0 {
					if err := s.AddWorkers(2); err != nil {
						t.Errorf("add workers: %v", err)
					}
				}
			}
		}(w)
	}

	// Scrape concurrently with the traffic: monotone counters must
	// never regress between successive snapshots.
	scrape := func() string {
		resp, err := srv.Client().Get(srv.URL + "/metrics")
		if err != nil {
			t.Fatalf("scrape: %v", err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("read scrape: %v", err)
		}
		return string(body)
	}
	monotone := []string{
		"livetm_tx_starts_total", "livetm_tx_commits_total",
		"livetm_session_submitted_total", "livetm_session_completed_total",
	}
	last := make(map[string]float64)
	for i := 0; i < 20; i++ {
		scrape()
		snap := reg.Snapshot()
		for _, name := range monotone {
			now := snap.Total(name)
			if now < last[name] {
				t.Fatalf("%s regressed: %v -> %v", name, last[name], now)
			}
			last[name] = now
		}
	}
	wg.Wait()

	body := scrape()
	for _, fam := range requiredFamilies {
		if !strings.Contains(body, "# TYPE "+fam+" ") {
			t.Errorf("family %s missing from /metrics", fam)
		}
	}

	if _, err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	snap := reg.Snapshot()
	if got, want := snap.Total("livetm_session_commits_total"), float64(2*rounds); got != want {
		t.Errorf("commits_total = %v, want %v", got, want)
	}
	if got := snap.Total("livetm_session_submitted_total"); got != float64(2*rounds) {
		t.Errorf("submitted_total = %v, want %d", got, 2*rounds)
	}
	if snap.Total("livetm_session_workers") != 4 {
		t.Errorf("workers gauge = %v, want 4 after AddWorkers", snap.Total("livetm_session_workers"))
	}
	if snap.Total("livetm_cut_pause_ns") == 0 {
		t.Errorf("no quiescent cuts recorded")
	}
	if snap.Total("livetm_recorder_events_total") == 0 {
		t.Errorf("no recorder events counted")
	}
	if snap.Total("livetm_checker_segments_total") == 0 {
		t.Errorf("no checker segments counted")
	}
}

// TestSessionStatsMatchRegistry opens an instrumented session and
// asserts SessionStats and the registry agree — Stats is a fold of the
// same instruments, not a second set of counters.
func TestSessionStatsMatchRegistry(t *testing.T) {
	reg := telemetry.NewRegistry()
	s := openTestSession(t, "native-norec", SessionConfig{
		Workers: 2, Vars: 4, Telemetry: reg,
	})
	for i := 0; i < 50; i++ {
		if err := s.Exec(context.Background(), func(tx Tx) error {
			v, err := tx.Read(i % 4)
			if err != nil {
				return err
			}
			return tx.Write(i%4, v+1)
		}); err != nil {
			t.Fatalf("exec: %v", err)
		}
	}
	st := s.Stats()
	snap := reg.Snapshot()
	if got := snap.Total("livetm_session_commits_total"); got != float64(st.Commits) {
		t.Errorf("registry commits %v != stats %d", got, st.Commits)
	}
	if got := snap.Total("livetm_session_submitted_total"); got != float64(st.Submitted) {
		t.Errorf("registry submitted %v != stats %d", got, st.Submitted)
	}
	if _, err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
}

// TestSimSessionTelemetry checks the simulated substrate lands its
// counters in the same families.
func TestSimSessionTelemetry(t *testing.T) {
	reg := telemetry.NewRegistry()
	s := openTestSession(t, "sim-tl2", SessionConfig{
		Workers: 2, Vars: 4, SimSteps: 100000, Telemetry: reg,
	})
	for i := 0; i < 20; i++ {
		if err := s.Exec(context.Background(), func(tx Tx) error {
			v, err := tx.Read(i % 4)
			if err != nil {
				return err
			}
			return tx.Write(i%4, v+1)
		}); err != nil {
			t.Fatalf("exec: %v", err)
		}
	}
	st := s.Stats()
	snap := reg.Snapshot()
	if got := snap.Total("livetm_session_commits_total"); got != float64(st.Commits) || got != 20 {
		t.Errorf("registry commits %v, stats %d, want 20", got, st.Commits)
	}
	if aborts := snap.Total("livetm_tx_aborts_total"); aborts != float64(st.Aborts) {
		t.Errorf("registry aborts %v != stats %d", aborts, st.Aborts)
	}
	if _, err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
}
