package engine

import (
	"errors"
	"fmt"
	"testing"

	"livetm/internal/model"
	"livetm/internal/safety"
)

// mixedBody returns a deterministic pseudo-random read/write body
// over nVars variables: idempotent across retries because the
// operation sequence depends only on (proc, round).
func mixedBody(nVars int) TxBody {
	return func(proc, round int, tx Tx) error {
		h := uint64(proc*2654435761 + round*40503 + 1)
		ops := int(h%3) + 1
		for j := 0; j < ops; j++ {
			h ^= h << 13
			h ^= h >> 7
			h ^= h << 17
			x := int(h % uint64(nVars))
			if h&4 == 0 {
				if _, err := tx.Read(x); err != nil {
					return err
				}
			} else if err := tx.Write(x, int64(h%5)); err != nil {
				return err
			}
		}
		return nil
	}
}

// counterBody increments variable x.
func counterBody(x int) TxBody {
	return func(proc, round int, tx Tx) error {
		v, err := tx.Read(x)
		if err != nil {
			return err
		}
		return tx.Write(x, v+1)
	}
}

// parasiticBody keeps writing without ever committing (§3.1's
// parasitic process, expressed through the engine API).
func parasiticBody(x int) TxBody {
	return func(proc, round int, tx Tx) error {
		if err := tx.Write(x, int64(round)); err != nil {
			return err
		}
		return ErrNoCommit
	}
}

func TestRegistryShape(t *testing.T) {
	engines := Engines(false)
	sims, natives := 0, 0
	seen := map[string]bool{}
	for _, e := range engines {
		if seen[e.Name()] {
			t.Errorf("duplicate engine name %q", e.Name())
		}
		seen[e.Name()] = true
		switch e.Capabilities().Substrate {
		case Simulated:
			sims++
		case Native:
			natives++
		}
	}
	if sims < 8 {
		t.Errorf("simulated engines = %d, want >= 8", sims)
	}
	if natives < 5 {
		t.Errorf("native engines = %d, want >= 5", natives)
	}
	// The algorithms implemented on both substrates pair up by
	// Algorithm().
	for _, alg := range []string{"tl2", "norec", "tinystm", "dstm"} {
		s, okS := Lookup("sim-" + alg)
		n, okN := Lookup("native-" + alg)
		if !okS || !okN {
			t.Fatalf("algorithm %q missing a substrate (sim=%v native=%v)", alg, okS, okN)
		}
		if s.Algorithm() != n.Algorithm() {
			t.Errorf("algorithm names differ: %q vs %q", s.Algorithm(), n.Algorithm())
		}
		if s.Capabilities().RealConcurrency || !n.Capabilities().RealConcurrency {
			t.Errorf("%s: substrate capabilities inverted", alg)
		}
		if !s.Capabilities().HistoryRecording || !n.Capabilities().HistoryRecording {
			t.Errorf("%s: both substrates must record histories", alg)
		}
	}
	if _, ok := Lookup("no-such-engine"); ok {
		t.Error("Lookup of unknown engine must fail")
	}
}

func TestRunConfigValidation(t *testing.T) {
	s, _ := Lookup("sim-tl2")
	n, _ := Lookup("native-tl2")
	cases := []struct {
		e   Engine
		cfg RunConfig
	}{
		{s, RunConfig{Procs: 0, Vars: 1, SimSteps: 10}},
		{s, RunConfig{Procs: 1, Vars: 0, SimSteps: 10}},
		{s, RunConfig{Procs: 1, Vars: 1}},                                 // no step budget
		{n, RunConfig{Procs: 1, Vars: 1}},                                 // no ops budget
		{n, RunConfig{Procs: 1, Vars: 1, OpsPerProc: 1, QuiesceEvery: 2}}, // quiesce without recording
		{n, RunConfig{Procs: 1, Vars: 1, OpsPerProc: 1, Record: true, QuiesceEvery: -1}},
	}
	for i, c := range cases {
		if _, err := c.e.Run(c.cfg, counterBody(0)); err == nil {
			t.Errorf("case %d: config %+v must be rejected", i, c.cfg)
		}
	}
}

// TestSimOpacityConformance runs the randomized opacity-conformance
// scenario through the engine API for every simulated engine: record
// the history, check well-formedness and opacity.
func TestSimOpacityConformance(t *testing.T) {
	for _, e := range Engines(false) {
		if e.Capabilities().Substrate != Simulated {
			continue
		}
		t.Run(e.Name(), func(t *testing.T) {
			for seed := uint64(1); seed <= 4; seed++ {
				st, err := e.Run(RunConfig{
					Procs: 2, Vars: 2, Seed: seed,
					OpsPerProc: 3, SimSteps: 20000, Record: true,
				}, mixedBody(2))
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				if st.History == nil {
					t.Fatal("recording engine returned no history")
				}
				if err := model.CheckWellFormed(st.History); err != nil {
					t.Fatalf("seed %d: malformed history: %v", seed, err)
				}
				res, err := safety.CheckOpacity(st.History)
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				if !res.Holds {
					t.Fatalf("seed %d: history not opaque: %s\n%s", seed, res.Reason, st.History)
				}
			}
		})
	}
}

// TestSimDeterministicReplay: the same config reproduces the same
// run.
func TestSimDeterministicReplay(t *testing.T) {
	e, _ := Lookup("sim-dstm")
	cfg := RunConfig{Procs: 3, Vars: 2, Seed: 11, SimSteps: 2000}
	a, err := e.Run(cfg, mixedBody(2))
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.Run(cfg, mixedBody(2))
	if err != nil {
		t.Fatal(err)
	}
	if a.Commits != b.Commits || a.Aborts != b.Aborts || a.Steps != b.Steps {
		t.Fatalf("replay diverged: %+v vs %+v", a, b)
	}
	for p := range a.PerProcCommits {
		if a.PerProcCommits[p] != b.PerProcCommits[p] {
			t.Fatalf("replay diverged at proc %d: %+v vs %+v", p, a, b)
		}
	}
	if a.Commits == 0 {
		t.Fatal("run committed nothing")
	}
}

// TestSimParasitic runs the parasitic-process scenario through the
// engine API: an obstruction-free TM keeps the correct process
// committing past the parasite, the blocking global lock wedges.
func TestSimParasitic(t *testing.T) {
	scenario := func(name string) (survivorCommits uint64) {
		t.Helper()
		e, ok := Lookup(name)
		if !ok {
			t.Fatalf("engine %s not registered", name)
		}
		st, err := e.Run(RunConfig{Procs: 2, Vars: 1, Seed: 5, SimSteps: 6000},
			func(proc, round int, tx Tx) error {
				if proc == 0 {
					return parasiticBody(0)(proc, round, tx)
				}
				return counterBody(0)(proc, round, tx)
			})
		if err != nil {
			t.Fatal(err)
		}
		if st.PerProcCommits[0] != 0 {
			t.Fatalf("%s: the parasite committed %d times", name, st.PerProcCommits[0])
		}
		if st.NoCommits == 0 {
			t.Fatalf("%s: the parasite never completed a round", name)
		}
		return st.PerProcCommits[1]
	}
	// The survivor may land a commit or two before the parasite
	// establishes itself (stmtest.Parasitic discards a warm-up phase
	// for the same reason): the property is bounded-vs-growing.
	if got := scenario("sim-ostm"); got < 10 {
		t.Errorf("ostm: correct process starved by a parasite (%d commits)", got)
	}
	if got := scenario("sim-glock"); got > 2 {
		t.Errorf("glock: correct process committed %d times behind a parasitic lock holder", got)
	}
}

// TestNativeConformance runs the bank-conservation scenario through
// the engine API on every native algorithm with real goroutines: 3
// transfer processes move money while an auditor process asserts the
// conserved total inside its own transactions. Run with -race.
func TestNativeConformance(t *testing.T) {
	const accounts = 8
	for _, e := range Engines(false) {
		if e.Capabilities().Substrate != Native {
			continue
		}
		t.Run(e.Name(), func(t *testing.T) {
			body := func(proc, round int, tx Tx) error {
				if proc == 0 { // auditor
					var total int64
					for i := 0; i < accounts; i++ {
						v, err := tx.Read(i)
						if err != nil {
							return err
						}
						total += v
					}
					if total != 0 {
						return fmt.Errorf("audit: total = %d, want 0", total)
					}
					return nil
				}
				h := uint64(proc*977 + round*31 + 1)
				h ^= h << 13
				h ^= h >> 7
				from, to := int(h%accounts), int((h>>8)%accounts)
				fv, err := tx.Read(from)
				if err != nil {
					return err
				}
				tv, err := tx.Read(to)
				if err != nil {
					return err
				}
				if from == to {
					return nil
				}
				if err := tx.Write(from, fv-1); err != nil {
					return err
				}
				return tx.Write(to, tv+1)
			}
			st, err := e.Run(RunConfig{Procs: 4, Vars: accounts, OpsPerProc: 150}, body)
			if err != nil {
				t.Fatal(err)
			}
			if want := uint64(4 * 150); st.Commits != want {
				t.Fatalf("commits = %d, want %d", st.Commits, want)
			}
			if st.AbortRate() < 0 || st.AbortRate() >= 1 {
				t.Fatalf("abort rate = %v", st.AbortRate())
			}
		})
	}
}

// TestNativeParasitic runs the parasitic scenario on the nonblocking
// native algorithm: the correct process finishes its budget even
// though a peer never commits.
func TestNativeParasitic(t *testing.T) {
	e, ok := Lookup("native-dstm")
	if !ok {
		t.Fatal("native-dstm not registered")
	}
	if !e.Capabilities().Nonblocking {
		t.Fatal("native-dstm must be nonblocking")
	}
	st, err := e.Run(RunConfig{Procs: 2, Vars: 1, OpsPerProc: 200},
		func(proc, round int, tx Tx) error {
			if proc == 0 {
				return parasiticBody(0)(proc, round, tx)
			}
			return counterBody(0)(proc, round, tx)
		})
	if err != nil {
		t.Fatal(err)
	}
	if st.PerProcCommits[0] != 0 {
		t.Fatalf("parasite committed %d times", st.PerProcCommits[0])
	}
	if st.PerProcCommits[1] != 200 {
		t.Fatalf("correct process committed %d times, want 200", st.PerProcCommits[1])
	}
	if st.NoCommits != 200 {
		t.Fatalf("parasitic rounds = %d, want 200", st.NoCommits)
	}
}

// TestBodyErrorSurfaces: a non-abort body error stops the run and is
// returned on both substrates.
func TestBodyErrorSurfaces(t *testing.T) {
	sentinel := errors.New("sentinel")
	for _, name := range []string{"sim-tl2", "native-tl2"} {
		e, _ := Lookup(name)
		cfg := RunConfig{Procs: 1, Vars: 1, SimSteps: 1000, OpsPerProc: 10}
		_, err := e.Run(cfg, func(proc, round int, tx Tx) error { return sentinel })
		if !errors.Is(err, sentinel) {
			t.Errorf("%s: err = %v, want sentinel", name, err)
		}
	}
}

// TestSimBodyErrorStopsEarly: a terminal body error must end the
// simulated run at the next step, not burn the whole budget while
// the errored process's live transaction wedges its peers.
func TestSimBodyErrorStopsEarly(t *testing.T) {
	sentinel := errors.New("sentinel")
	e, _ := Lookup("sim-glock")
	st, err := e.Run(RunConfig{Procs: 2, Vars: 1, Seed: 3, SimSteps: 100000},
		func(proc, round int, tx Tx) error {
			if proc == 0 {
				if err := tx.Write(0, 1); err != nil {
					return err
				}
				return sentinel // exits holding the global lock
			}
			return counterBody(0)(proc, round, tx)
		})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want sentinel", err)
	}
	if st.Steps >= 100000 {
		t.Fatalf("run burned the whole %d-step budget after the body error", st.Steps)
	}
}
