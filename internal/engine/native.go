package engine

import (
	"errors"
	"sync/atomic"

	"livetm/internal/native"
)

// NativeEngine adapts a native (real-concurrency) TM to the Engine
// interface: workers are goroutines, the budget is transaction rounds,
// and throughput is wall-clock real. Open starts a long-lived Session
// on a fresh TM instance; Run is the batch convenience wrapper over
// one (open → submit the Procs × OpsPerProc budget → close). With
// SessionConfig.Record the run is observed at its linearization points
// through internal/record, so the history reaching Stats.History is
// checkable like a simulated one.
type NativeEngine struct {
	info native.Info
	busy atomic.Bool
}

var _ Engine = (*NativeEngine)(nil)

// NewNative wraps a native algorithm.
func NewNative(info native.Info) *NativeEngine {
	return &NativeEngine{info: info}
}

// Name implements Engine. Native algorithm names already carry the
// substrate prefix ("native-tl2").
func (e *NativeEngine) Name() string { return e.info.Name }

// Algorithm implements Engine.
func (e *NativeEngine) Algorithm() string {
	const prefix = "native-"
	if len(e.info.Name) > len(prefix) && e.info.Name[:len(prefix)] == prefix {
		return e.info.Name[len(prefix):]
	}
	return e.info.Name
}

// Capabilities implements Engine.
func (e *NativeEngine) Capabilities() Capabilities {
	return Capabilities{
		Substrate:           Native,
		RealConcurrency:     true,
		DeterministicReplay: false,
		HistoryRecording:    true,
		Nonblocking:         e.info.Nonblocking,
	}
}

// nativeTx translates the native handle's sentinel error into the
// engine's, so bodies observe one abort vocabulary on either
// substrate.
type nativeTx struct {
	tx native.Txn
}

func (t nativeTx) Read(i int) (int64, error) {
	v, err := t.tx.Read(i)
	if errors.Is(err, native.ErrAborted) {
		return 0, ErrAborted
	}
	return v, err
}

func (t nativeTx) Write(i int, v int64) error {
	if err := t.tx.Write(i, v); errors.Is(err, native.ErrAborted) {
		return ErrAborted
	} else {
		return err
	}
}

// Open implements Engine: it starts a session with a worker pool of
// real goroutines on a fresh TM instance.
func (e *NativeEngine) Open(cfg SessionConfig) (*Session, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(Native); err != nil {
		return nil, err
	}
	b, err := openNativeSession(e.info, cfg)
	if err != nil {
		return nil, err
	}
	return &Session{name: e.info.Name, b: b}, nil
}

// Run implements Engine as a batch wrapper over Open: one session,
// cfg.Procs workers, OpsPerProc pinned rounds per worker. A second
// concurrent Run on the same engine value returns ErrBusy.
func (e *NativeEngine) Run(cfg RunConfig, body TxBody) (Stats, error) {
	if err := cfg.validate(Native); err != nil {
		return Stats{}, err
	}
	if !e.busy.CompareAndSwap(false, true) {
		return Stats{}, ErrBusy
	}
	defer e.busy.Store(false)
	return runOnSession(e, cfg, body)
}
