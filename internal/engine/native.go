package engine

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"livetm/internal/model"
	"livetm/internal/monitor"
	"livetm/internal/native"
	"livetm/internal/record"
)

// NativeEngine adapts a native (real-concurrency) TM to the Engine
// interface: processes are goroutines, the budget is transaction
// rounds, and throughput is wall-clock real. With RunConfig.Record the
// run is observed at its linearization points through internal/record,
// so the history reaching Stats.History is checkable like a simulated
// one.
type NativeEngine struct {
	info native.Info
}

var _ Engine = (*NativeEngine)(nil)

// NewNative wraps a native algorithm.
func NewNative(info native.Info) *NativeEngine {
	return &NativeEngine{info: info}
}

// Name implements Engine. Native algorithm names already carry the
// substrate prefix ("native-tl2").
func (e *NativeEngine) Name() string { return e.info.Name }

// Algorithm implements Engine.
func (e *NativeEngine) Algorithm() string {
	const prefix = "native-"
	if len(e.info.Name) > len(prefix) && e.info.Name[:len(prefix)] == prefix {
		return e.info.Name[len(prefix):]
	}
	return e.info.Name
}

// Capabilities implements Engine.
func (e *NativeEngine) Capabilities() Capabilities {
	return Capabilities{
		Substrate:           Native,
		RealConcurrency:     true,
		DeterministicReplay: false,
		HistoryRecording:    true,
		Nonblocking:         e.info.Nonblocking,
	}
}

// nativeTx translates the native handle's sentinel error into the
// engine's, so bodies observe one abort vocabulary on either
// substrate.
type nativeTx struct {
	tx native.Txn
}

func (t nativeTx) Read(i int) (int64, error) {
	v, err := t.tx.Read(i)
	if errors.Is(err, native.ErrAborted) {
		return 0, ErrAborted
	}
	return v, err
}

func (t nativeTx) Write(i int, v int64) error {
	if err := t.tx.Write(i, v); errors.Is(err, native.ErrAborted) {
		return ErrAborted
	} else {
		return err
	}
}

// barrier is a cyclic rendezvous that tolerates departures: a process
// that finishes its budget (or stops on an error) leaves, and the
// remaining parties rendezvous among themselves instead of deadlocking
// on the missing one.
type barrier struct {
	mu      sync.Mutex
	cond    *sync.Cond
	parties int
	waiting int
	phase   uint64
}

func newBarrier(parties int) *barrier {
	b := &barrier{parties: parties}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// await blocks until every remaining party arrives.
func (b *barrier) await() {
	b.mu.Lock()
	defer b.mu.Unlock()
	phase := b.phase
	b.waiting++
	if b.waiting >= b.parties {
		b.waiting = 0
		b.phase++
		b.cond.Broadcast()
		return
	}
	for phase == b.phase {
		b.cond.Wait()
	}
}

// leave removes the caller from the rendezvous set, releasing a
// now-complete phase if it was the straggler.
func (b *barrier) leave() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.parties--
	if b.waiting > 0 && b.waiting >= b.parties {
		b.waiting = 0
		b.phase++
		b.cond.Broadcast()
	}
}

// Live-monitoring plumbing constants.
const (
	// liveStreamCap bounds the event channel between the recording
	// processes and the monitor pump: backpressure, not loss. Sized so
	// short checker pauses (a segment search) do not stall producers —
	// the cap is the live path's memory/latency trade: smaller means
	// earlier backpressure and faster stops, larger means less stall.
	liveStreamCap = 16384
	// liveRebiasEvery is how often (in observed events) the pump feeds
	// measured starvation back into the backoff policy.
	liveRebiasEvery = 256
	// liveSegmentTxns is the live checker's default per-segment
	// transaction budget (RunConfig.LiveSegmentTxns overrides).
	liveSegmentTxns = 48
	// liveQuiesceEvery is the default rendezvous interval of a live
	// run when RunConfig.QuiesceEvery is 0: real quiescent cuts keep
	// the live checker exact; the bounded-overlap fallback only has to
	// absorb the windows that outrun the budget between cuts.
	liveQuiesceEvery = 4
)

// liveState couples one live run's monitor, backoff feedback loop and
// stop signal. The pump goroutine owns the monitor until done closes;
// violation is written before stop closes and read after done, so the
// channels order the accesses.
type liveState struct {
	mon       *monitor.Monitor
	stop      chan struct{}
	done      chan struct{}
	violation error
}

// runPump feeds the live stream through the shared monitor pump
// (record.Resequencer order restoration + monitor.Observe) while the
// workload executes. A terminal safety error closes the stop channel —
// the mid-flight cancellation — and the measured starvation rebiases
// the backoff policy every liveRebiasEvery events.
func runPump(ls *liveState, stream <-chan []record.Streamed, bo *native.Backoff, procs int) {
	defer close(ls.done)
	pump := &monitor.Pump{
		Mon:   ls.mon,
		Procs: procs,
		OnViolation: func(err error) {
			ls.violation = err
			close(ls.stop)
		},
		RebiasEvery: liveRebiasEvery,
		Rebias:      bo.Rebias,
	}
	pump.Run(stream)
}

// Run implements Engine.
func (e *NativeEngine) Run(cfg RunConfig, body TxBody) (Stats, error) {
	if err := cfg.validate(Native); err != nil {
		return Stats{}, err
	}
	tm, err := e.info.New(cfg.Vars)
	if err != nil {
		return Stats{}, err
	}
	obsTM, observable := tm.(native.ObservableTM)
	recording := cfg.Record || cfg.Live
	if recording && !observable {
		return Stats{}, errors.New("engine: " + e.info.Name + " does not expose linearization-point hooks")
	}
	bo := native.NewBackoff(cfg.Procs)
	var rec *record.Recorder
	var live *liveState
	if cfg.Live {
		segTxns := cfg.LiveSegmentTxns
		if segTxns == 0 {
			segTxns = liveSegmentTxns
		}
		procs := make([]model.Proc, cfg.Procs)
		for i := range procs {
			procs[i] = model.Proc(i + 1)
		}
		mon, err := monitor.New(monitor.Config{
			SegmentTxns: segTxns, TailWindow: cfg.LiveTailWindow, Procs: procs, Approx: true,
		})
		if err != nil {
			return Stats{}, err
		}
		live = &liveState{mon: mon, stop: make(chan struct{}), done: make(chan struct{})}
		rec = record.NewWithOptions(cfg.Procs, record.Options{
			CapacityHint:   cfg.OpsPerProc*8 + 16,
			StreamCapacity: liveStreamCap,
			Stop:           live.stop,
			// Without Record the stream is the only consumer, so the
			// per-process chunk rings recycle and allocation stays flat.
			DropStreamed: !cfg.Record,
		})
		go runPump(live, rec.Stream(), bo, cfg.Procs)
	} else if cfg.Record {
		// Pre-size each process's buffer for its committed rounds; a
		// busier run grows process-locally, chunk by chunk.
		rec = record.New(cfg.Procs, cfg.OpsPerProc*8+16)
	}
	quiesce := cfg.QuiesceEvery
	if cfg.Live && quiesce == 0 {
		quiesce = liveQuiesceEvery
	}
	if quiesce < 0 { // live with rendezvous explicitly disabled
		quiesce = 0
	}
	var bar *barrier
	if recording && quiesce > 0 {
		bar = newBarrier(cfg.Procs)
	}
	commits := make([]uint64, cfg.Procs)
	noCommits := make([]uint64, cfg.Procs)
	errs := make([]error, cfg.Procs)
	var stopped atomic.Bool
	var wg sync.WaitGroup
	for p := 0; p < cfg.Procs; p++ {
		proc := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			var obs native.Observer
			if rec != nil {
				obs = rec.Log(model.Proc(proc + 1))
			}
			var stop <-chan struct{}
			if live != nil {
				stop = live.stop
			}
			if bar != nil {
				defer bar.leave()
			}
			for round := 0; round < cfg.OpsPerProc; round++ {
				if stop != nil {
					select {
					case <-stop:
						stopped.Store(true)
						return
					default:
					}
				}
				if bar != nil && round > 0 && round%quiesce == 0 {
					bar.await()
				}
				fn := func(tx native.Txn) error {
					if err := body(proc, round, nativeTx{tx: tx}); errors.Is(err, ErrAborted) {
						// Hand the abort back to the native retry loop.
						return native.ErrAborted
					} else {
						return err
					}
				}
				var err error
				if observable {
					err = obsTM.AtomicallyOpts(native.RunOpts{
						Observer: obs, Stop: stop, Backoff: bo, Proc: proc,
					}, fn)
				} else {
					err = tm.Atomically(fn)
				}
				switch {
				case err == nil:
					commits[proc]++
				case errors.Is(err, ErrNoCommit):
					noCommits[proc]++
				case errors.Is(err, native.ErrStopped):
					stopped.Store(true)
					return
				default:
					errs[proc] = err
					return
				}
			}
		}()
	}
	wg.Wait()
	if live != nil {
		rec.CloseStream()
		<-live.done
	}

	st := Stats{PerProcCommits: commits, Aborts: tm.Stats().Aborts, BackoffCap: bo.Cap()}
	for p := 0; p < cfg.Procs; p++ {
		st.Commits += commits[p]
		st.NoCommits += noCommits[p]
	}
	if rec != nil {
		st.RecorderChunks = rec.Chunks()
		st.Truncated = rec.Truncated()
	}
	if cfg.Record && rec != nil {
		st.History = rec.History()
	}
	if live != nil {
		rep := live.mon.Report()
		st.Live = &rep
		st.Stopped = stopped.Load()
		st.BackoffBias = bo.BiasSnapshot()
		if live.violation != nil {
			return st, fmt.Errorf("%w: %v", ErrLiveViolation, live.violation)
		}
	}
	for _, err := range errs {
		if err != nil {
			return st, err
		}
	}
	return st, nil
}
