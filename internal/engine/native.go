package engine

import (
	"errors"
	"sync"

	"livetm/internal/model"
	"livetm/internal/native"
	"livetm/internal/record"
)

// NativeEngine adapts a native (real-concurrency) TM to the Engine
// interface: processes are goroutines, the budget is transaction
// rounds, and throughput is wall-clock real. With RunConfig.Record the
// run is observed at its linearization points through internal/record,
// so the history reaching Stats.History is checkable like a simulated
// one.
type NativeEngine struct {
	info native.Info
}

var _ Engine = (*NativeEngine)(nil)

// NewNative wraps a native algorithm.
func NewNative(info native.Info) *NativeEngine {
	return &NativeEngine{info: info}
}

// Name implements Engine. Native algorithm names already carry the
// substrate prefix ("native-tl2").
func (e *NativeEngine) Name() string { return e.info.Name }

// Algorithm implements Engine.
func (e *NativeEngine) Algorithm() string {
	const prefix = "native-"
	if len(e.info.Name) > len(prefix) && e.info.Name[:len(prefix)] == prefix {
		return e.info.Name[len(prefix):]
	}
	return e.info.Name
}

// Capabilities implements Engine.
func (e *NativeEngine) Capabilities() Capabilities {
	return Capabilities{
		Substrate:           Native,
		RealConcurrency:     true,
		DeterministicReplay: false,
		HistoryRecording:    true,
		Nonblocking:         e.info.Nonblocking,
	}
}

// nativeTx translates the native handle's sentinel error into the
// engine's, so bodies observe one abort vocabulary on either
// substrate.
type nativeTx struct {
	tx native.Txn
}

func (t nativeTx) Read(i int) (int64, error) {
	v, err := t.tx.Read(i)
	if errors.Is(err, native.ErrAborted) {
		return 0, ErrAborted
	}
	return v, err
}

func (t nativeTx) Write(i int, v int64) error {
	if err := t.tx.Write(i, v); errors.Is(err, native.ErrAborted) {
		return ErrAborted
	} else {
		return err
	}
}

// barrier is a cyclic rendezvous that tolerates departures: a process
// that finishes its budget (or stops on an error) leaves, and the
// remaining parties rendezvous among themselves instead of deadlocking
// on the missing one.
type barrier struct {
	mu      sync.Mutex
	cond    *sync.Cond
	parties int
	waiting int
	phase   uint64
}

func newBarrier(parties int) *barrier {
	b := &barrier{parties: parties}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// await blocks until every remaining party arrives.
func (b *barrier) await() {
	b.mu.Lock()
	defer b.mu.Unlock()
	phase := b.phase
	b.waiting++
	if b.waiting >= b.parties {
		b.waiting = 0
		b.phase++
		b.cond.Broadcast()
		return
	}
	for phase == b.phase {
		b.cond.Wait()
	}
}

// leave removes the caller from the rendezvous set, releasing a
// now-complete phase if it was the straggler.
func (b *barrier) leave() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.parties--
	if b.waiting > 0 && b.waiting >= b.parties {
		b.waiting = 0
		b.phase++
		b.cond.Broadcast()
	}
}

// Run implements Engine.
func (e *NativeEngine) Run(cfg RunConfig, body TxBody) (Stats, error) {
	if err := cfg.validate(Native); err != nil {
		return Stats{}, err
	}
	tm, err := e.info.New(cfg.Vars)
	if err != nil {
		return Stats{}, err
	}
	var rec *record.Recorder
	var obsTM native.ObservableTM
	if cfg.Record {
		var ok bool
		if obsTM, ok = tm.(native.ObservableTM); !ok {
			return Stats{}, errors.New("engine: " + e.info.Name + " does not expose linearization-point hooks")
		}
		// Pre-size each process's buffer for its committed rounds; a
		// busier run grows process-locally.
		rec = record.New(cfg.Procs, cfg.OpsPerProc*8+16)
	}
	var bar *barrier
	if cfg.Record && cfg.QuiesceEvery > 0 {
		bar = newBarrier(cfg.Procs)
	}
	commits := make([]uint64, cfg.Procs)
	noCommits := make([]uint64, cfg.Procs)
	errs := make([]error, cfg.Procs)
	var wg sync.WaitGroup
	for p := 0; p < cfg.Procs; p++ {
		proc := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			var obs native.Observer
			if rec != nil {
				obs = rec.Log(model.Proc(proc + 1))
			}
			if bar != nil {
				defer bar.leave()
			}
			for round := 0; round < cfg.OpsPerProc; round++ {
				if bar != nil && round > 0 && round%cfg.QuiesceEvery == 0 {
					bar.await()
				}
				fn := func(tx native.Txn) error {
					if err := body(proc, round, nativeTx{tx: tx}); errors.Is(err, ErrAborted) {
						// Hand the abort back to the native retry loop.
						return native.ErrAborted
					} else {
						return err
					}
				}
				var err error
				if obsTM != nil {
					err = obsTM.AtomicallyObserved(obs, fn)
				} else {
					err = tm.Atomically(fn)
				}
				switch {
				case err == nil:
					commits[proc]++
				case errors.Is(err, ErrNoCommit):
					noCommits[proc]++
				default:
					errs[proc] = err
					return
				}
			}
		}()
	}
	wg.Wait()

	st := Stats{PerProcCommits: commits, Aborts: tm.Stats().Aborts}
	for p := 0; p < cfg.Procs; p++ {
		st.Commits += commits[p]
		st.NoCommits += noCommits[p]
	}
	if rec != nil {
		st.History = rec.History()
	}
	for _, err := range errs {
		if err != nil {
			return st, err
		}
	}
	return st, nil
}
