package engine

import (
	"errors"
	"sync"

	"livetm/internal/native"
)

// NativeEngine adapts a native (real-concurrency) TM to the Engine
// interface: processes are goroutines, the budget is transaction
// rounds, and throughput is wall-clock real.
type NativeEngine struct {
	info native.Info
}

var _ Engine = (*NativeEngine)(nil)

// NewNative wraps a native algorithm.
func NewNative(info native.Info) *NativeEngine {
	return &NativeEngine{info: info}
}

// Name implements Engine. Native algorithm names already carry the
// substrate prefix ("native-tl2").
func (e *NativeEngine) Name() string { return e.info.Name }

// Algorithm implements Engine.
func (e *NativeEngine) Algorithm() string {
	const prefix = "native-"
	if len(e.info.Name) > len(prefix) && e.info.Name[:len(prefix)] == prefix {
		return e.info.Name[len(prefix):]
	}
	return e.info.Name
}

// Capabilities implements Engine.
func (e *NativeEngine) Capabilities() Capabilities {
	return Capabilities{
		Substrate:           Native,
		RealConcurrency:     true,
		DeterministicReplay: false,
		HistoryRecording:    false,
		Nonblocking:         e.info.Nonblocking,
	}
}

// nativeTx translates the native handle's sentinel error into the
// engine's, so bodies observe one abort vocabulary on either
// substrate.
type nativeTx struct {
	tx native.Txn
}

func (t nativeTx) Read(i int) (int64, error) {
	v, err := t.tx.Read(i)
	if errors.Is(err, native.ErrAborted) {
		return 0, ErrAborted
	}
	return v, err
}

func (t nativeTx) Write(i int, v int64) error {
	if err := t.tx.Write(i, v); errors.Is(err, native.ErrAborted) {
		return ErrAborted
	} else {
		return err
	}
}

// Run implements Engine.
func (e *NativeEngine) Run(cfg RunConfig, body TxBody) (Stats, error) {
	if err := cfg.validate(Native); err != nil {
		return Stats{}, err
	}
	tm, err := e.info.New(cfg.Vars)
	if err != nil {
		return Stats{}, err
	}
	commits := make([]uint64, cfg.Procs)
	noCommits := make([]uint64, cfg.Procs)
	errs := make([]error, cfg.Procs)
	var wg sync.WaitGroup
	for p := 0; p < cfg.Procs; p++ {
		proc := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			for round := 0; round < cfg.OpsPerProc; round++ {
				err := tm.Atomically(func(tx native.Txn) error {
					if err := body(proc, round, nativeTx{tx: tx}); errors.Is(err, ErrAborted) {
						// Hand the abort back to the native retry loop.
						return native.ErrAborted
					} else {
						return err
					}
				})
				switch {
				case err == nil:
					commits[proc]++
				case errors.Is(err, ErrNoCommit):
					noCommits[proc]++
				default:
					errs[proc] = err
					return
				}
			}
		}()
	}
	wg.Wait()

	st := Stats{PerProcCommits: commits, Aborts: tm.Stats().Aborts}
	for p := 0; p < cfg.Procs; p++ {
		st.Commits += commits[p]
		st.NoCommits += noCommits[p]
	}
	for _, err := range errs {
		if err != nil {
			return st, err
		}
	}
	return st, nil
}
