package engine

import (
	"os"
	"path/filepath"
	"testing"

	"livetm/internal/model"
	"livetm/internal/monitor"
	"livetm/internal/safety"
)

// TestNativeRecordingConformance is the end-to-end acceptance check
// for the native recorder: every native algorithm runs real goroutines
// with recording on, and the drained history must be well-formed and
// pass the (streaming) opacity check. Run with -race.
//
// The workloads keep the checker's search windows small: QuiesceEvery
// plants quiescent cuts, few processes bound the concurrent
// transactions per window, and the disjoint variant keeps abort storms
// (which add transactions between cuts) out of the hot loop.
func TestNativeRecordingConformance(t *testing.T) {
	workloads := []struct {
		name  string
		procs int
		vars  int
		body  func(nVars int) TxBody
	}{
		{"disjoint", 3, 12, func(nVars int) TxBody {
			return func(proc, round int, tx Tx) error {
				base := proc * 4
				i := base + round%4
				v, err := tx.Read(i)
				if err != nil {
					return err
				}
				return tx.Write(i, v+1)
			}
		}},
		{"shared-counter", 2, 1, func(nVars int) TxBody {
			return counterBody(0)
		}},
	}
	for _, e := range Engines(false) {
		if e.Capabilities().Substrate != Native {
			continue
		}
		for _, w := range workloads {
			t.Run(e.Name()+"/"+w.name, func(t *testing.T) {
				st, err := e.Run(RunConfig{
					Procs: w.procs, Vars: w.vars,
					OpsPerProc: 12, Record: true, QuiesceEvery: 2,
				}, w.body(w.vars))
				if err != nil {
					t.Fatal(err)
				}
				if want := uint64(w.procs * 12); st.Commits != want {
					t.Fatalf("commits = %d, want %d", st.Commits, want)
				}
				h := st.History
				if len(h) == 0 {
					t.Fatal("recording run returned no history")
				}
				if err := model.CheckWellFormed(h); err != nil {
					t.Fatalf("malformed recorded history: %v", err)
				}
				m, err := monitor.New(monitor.Config{SegmentTxns: 48})
				if err != nil {
					t.Fatal(err)
				}
				if err := m.ObserveHistory(h); err != nil {
					t.Fatalf("monitor: %v", err)
				}
				r := m.Report()
				if !r.Checked {
					t.Fatalf("opacity undecided: %s", r.Opacity.Reason)
				}
				if !r.Opacity.Holds {
					t.Fatalf("recorded native history not opaque: %s", r.Opacity.Reason)
				}
				// Every process committed its full budget; the lasso
				// reading of the run must make progress everywhere.
				for _, p := range r.Procs {
					if p.Commits != 12 {
						t.Errorf("p%d commits = %d, want 12", p.Proc, p.Commits)
					}
				}
			})
		}
	}
}

// TestNativeRecordingCounts: the recorded history carries exactly the
// run's commits, and aborted attempts show up as aborted transactions.
func TestNativeRecordingCounts(t *testing.T) {
	e, ok := Lookup("native-tl2")
	if !ok {
		t.Fatal("native-tl2 not registered")
	}
	st, err := e.Run(RunConfig{
		Procs: 2, Vars: 1, OpsPerProc: 25, Record: true, QuiesceEvery: 5,
	}, counterBody(0))
	if err != nil {
		t.Fatal(err)
	}
	txns, err := model.Transactions(st.History)
	if err != nil {
		t.Fatal(err)
	}
	var committed, aborted uint64
	for _, txn := range txns {
		switch txn.Status {
		case model.Committed:
			committed++
		case model.Aborted:
			aborted++
		}
	}
	if committed != st.Commits {
		t.Errorf("recorded commits = %d, stats say %d", committed, st.Commits)
	}
	if aborted != st.Aborts {
		t.Errorf("recorded aborts = %d, stats say %d", aborted, st.Aborts)
	}
}

// TestNativeRecordingParasitic: declined commits (ErrNoCommit) are
// recorded as completion aborts — the native TM really does discard
// the attempt — keeping the history well-formed across rounds.
func TestNativeRecordingParasitic(t *testing.T) {
	e, _ := Lookup("native-dstm")
	st, err := e.Run(RunConfig{Procs: 2, Vars: 1, OpsPerProc: 20, Record: true, QuiesceEvery: 4},
		func(proc, round int, tx Tx) error {
			if proc == 0 {
				return parasiticBody(0)(proc, round, tx)
			}
			return counterBody(0)(proc, round, tx)
		})
	if err != nil {
		t.Fatal(err)
	}
	if err := model.CheckWellFormed(st.History); err != nil {
		t.Fatalf("malformed: %v", err)
	}
	if st.NoCommits != 20 {
		t.Fatalf("parasitic rounds = %d, want 20", st.NoCommits)
	}
	for _, ev := range st.History.Projection(1) {
		if ev.Kind == model.RespCommit {
			t.Fatal("the parasite's projection contains a commit event")
		}
	}
	res, err := safety.CheckOpacitySegmented(st.History, 48)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Holds {
		t.Fatalf("not opaque: %s", res.Reason)
	}
}

// TestRecordedTraceRoundTrip: a recorded native history survives
// serialize → parse → CheckWellFormed, so `livetm record` output feeds
// `livetm check`/`livetm monitor` losslessly.
func TestRecordedTraceRoundTrip(t *testing.T) {
	e, _ := Lookup("native-norec")
	st, err := e.Run(RunConfig{Procs: 2, Vars: 4, OpsPerProc: 10, Record: true, QuiesceEvery: 2},
		mixedBody(4))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "native.jsonl")
	if err := model.SaveTrace(path, st.History); err != nil {
		t.Fatal(err)
	}
	loaded, err := model.LoadTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := model.CheckWellFormed(loaded); err != nil {
		t.Fatalf("round-tripped history malformed: %v", err)
	}
	if len(loaded) != len(st.History) {
		t.Fatalf("round trip changed length: %d vs %d", len(loaded), len(st.History))
	}
	for i := range loaded {
		if loaded[i] != st.History[i] {
			t.Fatalf("event %d changed: %s vs %s", i, loaded[i], st.History[i])
		}
	}
	if fi, err := os.Stat(path); err != nil || fi.Size() == 0 {
		t.Fatalf("trace file empty or missing: %v", err)
	}
}

// TestNativeRecordingBodyAbort: bodies that hand ErrAborted back to
// the retry loop themselves must not corrupt the recorded history —
// each abandoned attempt closes its transaction before the retry
// starts a new one.
func TestNativeRecordingBodyAbort(t *testing.T) {
	e, _ := Lookup("native-tinystm")
	const procs, rounds = 2, 12
	var tried [procs][rounds]bool // per-goroutine rows: no sharing
	st, err := e.Run(RunConfig{
		Procs: procs, Vars: 2, OpsPerProc: rounds, Record: true, QuiesceEvery: 3,
	}, func(proc, round int, tx Tx) error {
		if _, err := tx.Read(proc % 2); err != nil {
			return err
		}
		if round%3 == 0 && !tried[proc][round] {
			tried[proc][round] = true
			return ErrAborted // voluntary abort on the first attempt
		}
		return tx.Write(proc%2, int64(round))
	})
	if err != nil {
		t.Fatal(err)
	}
	h := st.History
	if err := model.CheckWellFormed(h); err != nil {
		t.Fatalf("malformed: %v", err)
	}
	res, err := safety.CheckOpacitySegmented(h, 48)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Holds {
		t.Fatalf("not opaque: %s", res.Reason)
	}
	txns, err := model.Transactions(h)
	if err != nil {
		t.Fatal(err)
	}
	var aborted int
	for _, txn := range txns {
		if txn.Status == model.Aborted {
			aborted++
		}
	}
	// Each process voluntarily aborts rounds 0, 3, 6, 9 once.
	if aborted < procs*4 {
		t.Fatalf("aborted transactions = %d, want >= %d", aborted, procs*4)
	}
}
