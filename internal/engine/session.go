package engine

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"livetm/internal/model"
	"livetm/internal/monitor"
	"livetm/internal/telemetry"
)

// The session API is the open-world counterpart of the closed batch
// Run: a Session is a long-lived TM instance with a worker pool, and
// clients submit individual transactions while the instance serves —
// the shape of the paper's liveness statements, which are about
// processes that keep issuing transactions forever, not about a fixed
// Procs × OpsPerProc budget. Run is a thin wrapper over a Session
// (open → submit the budget → close), so both substrates have exactly
// one execution core.

// AnyWorker submits a transaction to whichever worker frees up first.
// Pinning to a specific worker instead fixes the transaction's process
// identity in the recorded history (and, on the simulated substrate,
// its scheduling identity).
const AnyWorker = -1

// ErrClosed is returned by session operations after Close: the session
// is draining or gone, and the submission was not accepted.
var ErrClosed = errors.New("engine: session is closed")

// ErrBusy is returned by Run when the engine value is already running:
// engines are safe for sequential reuse but a concurrent second Run
// would race on the same instance. Open a Session (or a second engine
// value) for concurrent work.
var ErrBusy = errors.New("engine: engine is already running")

// ErrStopped is the result of a submission the session could not
// execute because the live monitor stopped it mid-flight: the
// violation itself is returned by Close (wrapped around
// ErrLiveViolation).
var ErrStopped = errors.New("engine: session stopped by the live monitor")

// ErrStepBudget is the result of a submission (and of Close) on a
// simulated session whose SimSteps budget ran out: the cooperative
// scheduler will not be stepped again, so outstanding transactions
// cannot complete. The batch Run wrapper treats it as a normal end of
// the run, mirroring the old "until the step budget runs out"
// semantics.
var ErrStepBudget = errors.New("engine: session step budget exhausted")

// ErrOverloaded is returned by an asynchronous Submit when the target
// lane already holds SessionConfig.MaxQueue pending submissions: the
// submission was not accepted and the caller should back off and
// retry. Only Submit sees it — Exec blocks against QueueDepth instead
// of failing — so it is the signal a service layer turns into
// HTTP 429 + Retry-After.
var ErrOverloaded = errors.New("engine: submission queue full")

// Body is one client-submitted transaction: like TxBody but anonymous
// — a session transaction has no round number, and its process
// identity is whichever worker executes it. It must be idempotent
// across retries and must stop (return the error) when an operation
// fails.
type Body func(tx Tx) error

// Submitter is the transaction-submission surface of a Session — the
// four ways a client hands work to a TM instance, separated from the
// session's lifecycle methods (Drain, Stats, AddWorkers, Close) so a
// service layer can accept submissions through any intermediary: a
// *Session directly, a wire server fronting one, or a router fanning
// out over several. The contract is the Session one: Exec/ExecOn
// block for the commit result and feel QueueDepth backpressure;
// Submit/SubmitOn never block, invoke done (which must not block)
// exactly once per accepted submission, and fail fast with
// ErrOverloaded past MaxQueue.
type Submitter interface {
	// Exec submits one transaction to any worker and blocks until it
	// commits (nil), is declined (ErrNoCommit), or fails.
	Exec(ctx context.Context, body Body) error
	// ExecOn is Exec pinned to one worker (0-based); AnyWorker
	// restores Exec.
	ExecOn(ctx context.Context, worker int, body Body) error
	// Submit enqueues one transaction asynchronously; done (may be
	// nil) is invoked exactly once with the commit result.
	Submit(body Body, done func(error)) error
	// SubmitOn is Submit pinned to one worker (0-based).
	SubmitOn(worker int, body Body, done func(error)) error
}

// SessionConfig sizes a long-lived session.
type SessionConfig struct {
	// Engine is the registry name (e.g. "native-tl2") the package-level
	// Open resolves; the Engine.Open method ignores it.
	Engine string
	// Workers is the size of the worker pool (>= 1): the session's
	// process count. Each worker executes submitted transactions one at
	// a time, so Workers bounds the transaction concurrency.
	Workers int
	// MaxWorkers provisions capacity for dynamic admission on the
	// native substrate: AddWorkers may grow the pool up to this many
	// workers mid-session (recorder logs, backoff slots and queue lanes
	// are provisioned up front so the record/monitor stream stays
	// correct when the process count is not fixed at Open). 0 means
	// Workers — a fixed pool. The simulated substrate requires a fixed
	// pool.
	MaxWorkers int
	// Vars is the number of t-variables (>= 1).
	Vars int
	// Seed makes simulated sessions reproducible (ignored by native
	// ones).
	Seed uint64
	// SimSteps is the session's total cooperative-scheduler step budget
	// (simulated substrate only, required there). Once exhausted,
	// outstanding and future submissions fail with ErrStepBudget.
	SimSteps int
	// QueueDepth is the backpressure threshold of each submission lane
	// (the shared queue and each worker's pinned queue) on the native
	// substrate: Exec blocks while its lane holds that many pending
	// transactions. Asynchronous Submit is exempt — it must never block
	// because a worker's result callback may be the submitter — so an
	// unchecked Submit flood grows the queue instead (bound it with
	// MaxQueue). 0 defaults to 64.
	QueueDepth int
	// MaxQueue is the hard admission cap of each submission lane: an
	// asynchronous Submit whose target lane already holds this many
	// pending transactions is refused with ErrOverloaded instead of
	// growing the queue without bound. Unlike QueueDepth it never
	// blocks — refusal is immediate, which is what lets a worker's
	// result callback keep submitting safely and a service layer turn
	// the sentinel into HTTP 429. 0 means unbounded (the historical
	// behaviour). Applies on both substrates.
	MaxQueue int
	// Record retains the session's history (see RunConfig.Record);
	// Session.History returns it after Close.
	Record bool
	// QuiesceEvery plants a quiescent cut in the recorded stream every
	// that-many completed transactions per worker (see
	// RunConfig.QuiesceEvery). In a session the cut is a brief global
	// pause — no new transaction starts while in-flight ones finish —
	// because idle workers cannot rendezvous at a barrier. Live
	// sessions treat 0 as the live default (4); pass -1 for no cuts.
	QuiesceEvery int
	// Live attaches the online monitor for the session's whole
	// lifetime: events stream into the checker while transactions
	// execute, a safety violation stops the session mid-flight
	// (outstanding submissions fail with ErrStopped and Close returns
	// ErrLiveViolation), and measured per-process starvation
	// continuously rebiases the native retry-loop backoff. Native
	// substrate only.
	Live bool
	// LiveSegmentTxns is the live checker's per-segment transaction
	// budget (0 defaults to 48; max 64).
	LiveSegmentTxns int
	// LiveTailWindow is the live monitor's liveness-classification
	// window in events (0 defaults to 256).
	LiveTailWindow int
	// Shards partitions the keyspace and the worker pool into that many
	// shard-local groups on the native substrate (0 or 1 = unsharded).
	// Variables are split contiguously (variable v lands on shard
	// v*Shards/Vars) and so are workers (worker p belongs to group
	// p*Shards/MaxWorkers), so a quiescent cut on shard k pauses only
	// shard k's group instead of the whole pool, and a live monitor fans
	// the stream out to one streaming checker per shard with a
	// cross-shard merge pass for spanning transactions. Must be a power
	// of two dividing both Workers and MaxWorkers; sharding only applies
	// to recorded or live sessions (cuts and checkers are what shards
	// localize). Once any transaction touches a variable outside its
	// worker's shard, cuts degrade to global (all groups pause) for the
	// rest of the session — the checker-side merge still keeps spanning
	// verdicts sound either way.
	Shards int
	// Telemetry registers the session's instruments — submission and
	// commit counters, lane queue depths, Exec latency, per-shard cut
	// pauses, the native retry loop's per-algorithm transaction
	// families, recorder and checker-lane telemetry, and (on live
	// sessions) the monitor's liveness-class, starvation and backoff-
	// bias gauges — in the given registry, where a /metrics scrape or a
	// flight recorder can read them mid-run without touching session
	// state. Nil keeps the session on bare (unregistered) instruments:
	// the Stats-backing counters cost exactly the same, and the clock-
	// involving extras (Exec latency, retry-latency and backoff-wait
	// histograms) are skipped entirely — the uninstrumented baseline
	// the telemetry-overhead benchmark compares against.
	Telemetry *telemetry.Registry
}

func (cfg SessionConfig) withDefaults() SessionConfig {
	if cfg.MaxWorkers < cfg.Workers {
		cfg.MaxWorkers = cfg.Workers
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 1
	}
	return cfg
}

func (cfg SessionConfig) validate(sub Substrate) error {
	if cfg.Workers <= 0 {
		return fmt.Errorf("engine: need a positive worker count, got %d", cfg.Workers)
	}
	if cfg.Vars <= 0 {
		return fmt.Errorf("engine: need a positive variable count, got %d", cfg.Vars)
	}
	if cfg.MaxQueue < 0 {
		return fmt.Errorf("engine: MaxQueue must be non-negative, got %d", cfg.MaxQueue)
	}
	switch sub {
	case Simulated:
		if cfg.SimSteps <= 0 {
			return fmt.Errorf("engine: simulated sessions need a positive SimSteps budget")
		}
		if cfg.Live {
			return fmt.Errorf("engine: live monitoring needs the native substrate (simulated histories are checked after the run)")
		}
		if cfg.MaxWorkers > cfg.Workers {
			return fmt.Errorf("engine: the simulated substrate has a fixed worker set (MaxWorkers %d > Workers %d)", cfg.MaxWorkers, cfg.Workers)
		}
	case Native:
		if cfg.QuiesceEvery < 0 && !(cfg.Live && cfg.QuiesceEvery == -1) {
			return fmt.Errorf("engine: QuiesceEvery must be non-negative (or -1 on a live session), got %d", cfg.QuiesceEvery)
		}
		if cfg.QuiesceEvery > 0 && !cfg.Record && !cfg.Live {
			return fmt.Errorf("engine: QuiesceEvery only applies to recorded or live sessions")
		}
		if (cfg.LiveSegmentTxns != 0 || cfg.LiveTailWindow != 0) && !cfg.Live {
			return fmt.Errorf("engine: LiveSegmentTxns and LiveTailWindow only apply to live sessions")
		}
		if cfg.LiveSegmentTxns < 0 || cfg.LiveSegmentTxns > 64 {
			return fmt.Errorf("engine: LiveSegmentTxns %d out of range [0, 64]", cfg.LiveSegmentTxns)
		}
		if cfg.LiveTailWindow < 0 {
			return fmt.Errorf("engine: LiveTailWindow must be non-negative, got %d", cfg.LiveTailWindow)
		}
		if cfg.Shards > 1 {
			if cfg.Shards&(cfg.Shards-1) != 0 {
				return fmt.Errorf("engine: Shards must be a power of two, got %d", cfg.Shards)
			}
			if !cfg.Record && !cfg.Live {
				return fmt.Errorf("engine: Shards only applies to recorded or live sessions (shards localize cuts and checkers)")
			}
			if cfg.Shards > cfg.Workers {
				return fmt.Errorf("engine: Shards %d exceeds Workers %d (every shard group needs a worker)", cfg.Shards, cfg.Workers)
			}
			if cfg.Workers%cfg.Shards != 0 {
				return fmt.Errorf("engine: Workers %d must divide evenly into %d shard groups", cfg.Workers, cfg.Shards)
			}
			if cfg.MaxWorkers > 0 && cfg.MaxWorkers%cfg.Shards != 0 {
				return fmt.Errorf("engine: MaxWorkers %d must divide evenly into %d shard groups", cfg.MaxWorkers, cfg.Shards)
			}
			if cfg.Shards > cfg.Vars {
				return fmt.Errorf("engine: Shards %d exceeds Vars %d (every shard needs a variable)", cfg.Shards, cfg.Vars)
			}
		}
	}
	if sub == Simulated && cfg.Shards > 1 {
		return fmt.Errorf("engine: sharding needs the native substrate (simulated sessions have one global scheduler)")
	}
	return nil
}

// CutStats summarizes the latency of quiescent-cut pauses: how long
// the exclusive lock acquisition + release took, in nanoseconds, over
// Count cuts. Percentiles come from the session's fixed log-bucketed
// telemetry histograms (livetm_cut_pause_ns), so they cover the whole
// session at flat memory, with at most 1/4 relative bucket error (see
// internal/telemetry).
type CutStats struct {
	// Count is the number of cuts taken.
	Count uint64
	// P50ns and P99ns are the pause-latency percentiles in nanoseconds
	// (0 when no cuts were taken).
	P50ns int64
	P99ns int64
}

// SessionStats is a point-in-time snapshot of a session's counters,
// safe to take mid-flight from any goroutine.
type SessionStats struct {
	// Workers is the number of admitted workers at snapshot time.
	Workers int
	// Submitted and Completed count accepted submissions and finished
	// ones (committed, declined, or failed); the difference is the
	// in-flight plus queued load.
	Submitted uint64
	Completed uint64
	// Commits, Aborts and NoCommits mirror Stats: committed
	// transactions, aborted attempts, and declined (ErrNoCommit)
	// completions.
	Commits   uint64
	Aborts    uint64
	NoCommits uint64
	// PerWorkerCommits holds each admitted worker's commit count.
	PerWorkerCommits []uint64
	// Steps is the scheduler steps consumed so far (simulated only).
	Steps int
	// Stopped reports that the live monitor stopped the session.
	Stopped bool
	// BackoffCap and BackoffBias mirror Stats (native substrate;
	// BackoffBias only on live sessions, where the feedback runs).
	BackoffCap  int
	BackoffBias []int
	// RecorderChunks and Truncated mirror Stats on recording or live
	// sessions.
	RecorderChunks int
	Truncated      bool
	// Shards is the session's shard count (1 = unsharded).
	Shards int
	// CutLatency aggregates every quiescent cut the session forced,
	// across all shards (Count 0 when the session takes no cuts).
	CutLatency CutStats
	// ShardCuts is the per-shard cut-latency breakdown, indexed by
	// shard, when Shards > 1; nil otherwise.
	ShardCuts []CutStats
}

// AbortRate is Aborts / (Commits + Aborts), or 0 with no attempts.
func (s SessionStats) AbortRate() float64 {
	if s.Commits+s.Aborts == 0 {
		return 0
	}
	return float64(s.Aborts) / float64(s.Commits+s.Aborts)
}

// sessionBackend is the substrate half of a Session.
type sessionBackend interface {
	// submit enqueues one transaction; done (may be nil) is invoked
	// exactly once with the commit result. demand marks a submission a
	// caller blocks on: it feels QueueDepth backpressure on the native
	// substrate (ctx bounds that wait), and it is what makes the
	// simulated substrate step the cooperative scheduler.
	submit(ctx context.Context, worker int, body Body, done func(error), demand bool) error
	// drain blocks until every accepted submission has completed (or
	// ctx is done). On the simulated substrate draining is also what
	// drives execution.
	drain(ctx context.Context) error
	stats() SessionStats
	addWorkers(n int) error
	close() (*monitor.Report, error)
	history() model.History
}

// Session is a long-lived TM instance serving client-submitted
// transactions from a worker pool. Open one with Open (by registry
// name) or Engine.Open; all methods are safe for concurrent use.
//
// On the native substrate the workers are real goroutines and
// submissions execute as soon as a worker frees up. On the simulated
// substrate the cooperative scheduler is demand-driven: submissions
// execute while some caller blocks in Exec or Drain (or during Close's
// final drain), which is what keeps batch runs deterministic.
type Session struct {
	name string
	b    sessionBackend
}

// A Session is the canonical Submitter.
var _ Submitter = (*Session)(nil)

// Name returns the engine name the session runs on.
func (s *Session) Name() string { return s.name }

// Exec submits one transaction to any worker and blocks until it
// commits (nil), is declined (ErrNoCommit), or fails. A done context
// abandons the wait — not the transaction, whose result is discarded.
func (s *Session) Exec(ctx context.Context, body Body) error {
	return s.ExecOn(ctx, AnyWorker, body)
}

// ExecOn is Exec pinned to one worker (0-based), fixing the
// transaction's process identity; AnyWorker restores Exec. Pinned
// submissions to one worker execute in submission order.
func (s *Session) ExecOn(ctx context.Context, worker int, body Body) error {
	ch := make(chan error, 1)
	if err := s.b.submit(ctx, worker, body, func(err error) { ch <- err }, true); err != nil {
		return err
	}
	select {
	case err := <-ch:
		return err
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Submit enqueues one transaction asynchronously; done (may be nil) is
// invoked with the commit result on the executing worker's goroutine,
// so it must not block — submitting follow-up work with Submit is
// fine (Submit never blocks; only Exec feels QueueDepth backpressure,
// and Exec is therefore forbidden in callbacks).
func (s *Session) Submit(body Body, done func(error)) error {
	return s.SubmitOn(AnyWorker, body, done)
}

// SubmitOn is Submit pinned to one worker (0-based).
func (s *Session) SubmitOn(worker int, body Body, done func(error)) error {
	return s.b.submit(context.Background(), worker, body, done, false)
}

// Drain blocks until every submission accepted so far has completed,
// or ctx is done. On the simulated substrate Drain also drives the
// cooperative scheduler (see Session).
func (s *Session) Drain(ctx context.Context) error {
	return s.b.drain(ctx)
}

// Stats snapshots the session's counters mid-flight.
func (s *Session) Stats() SessionStats { return s.b.stats() }

// AddWorkers admits n more workers mid-session, up to
// SessionConfig.MaxWorkers (native substrate only). The recorder and
// backoff slots are provisioned for MaxWorkers up front; the live
// monitor's process set grows lazily — an admitted worker joins the
// monitored set with its first event, so a worker that never runs a
// transaction does not appear in the final report.
func (s *Session) AddWorkers(n int) error { return s.b.addWorkers(n) }

// Close stops accepting submissions, drains the in-flight and queued
// transactions, shuts the worker pool down, and returns the live
// monitor's final report (nil when the session was not live). The
// error is the session's terminal condition: nil for a clean
// shutdown, ErrLiveViolation (wrapped) when the live monitor stopped
// the session, ErrStepBudget when a simulated session exhausted its
// budget, or the fatal body error that crashed a simulated worker.
// Closing twice returns ErrClosed.
func (s *Session) Close() (*monitor.Report, error) { return s.b.close() }

// History returns the recorded history of a SessionConfig.Record
// session after Close, else nil.
func (s *Session) History() model.History { return s.b.history() }

// watchCtx arranges wake to be called once if ctx ends before the
// returned stop function runs — the bridge for condition-variable
// waits, which cannot select on a context.
func watchCtx(ctx context.Context, wake func()) (stop func()) {
	d := ctx.Done()
	if d == nil {
		return func() {}
	}
	ch := make(chan struct{})
	go func() {
		select {
		case <-d:
			wake()
		case <-ch:
		}
	}()
	return func() { close(ch) }
}

// takeAlternating pops the next job from the two lanes, alternating
// which is preferred on successive ticks so neither lane can starve
// behind sustained traffic on the other.
func takeAlternating[J any](pinned, shared *[]J, tick int) (J, bool) {
	lanes := [2]*[]J{pinned, shared}
	if tick%2 == 1 {
		lanes[0], lanes[1] = lanes[1], lanes[0]
	}
	for _, lane := range lanes {
		if q := *lane; len(q) > 0 {
			j := q[0]
			*lane = q[1:]
			return j, true
		}
	}
	var zero J
	return zero, false
}

// Open starts a session on the engine named cfg.Engine (see Engines /
// Lookup). Each session owns a fresh TM instance; any number of
// sessions may be open concurrently.
func Open(cfg SessionConfig) (*Session, error) {
	e, ok := Lookup(cfg.Engine)
	if !ok {
		return nil, fmt.Errorf("engine: unknown engine %q", cfg.Engine)
	}
	return e.Open(cfg)
}

// session maps the batch run's shape onto a session configuration —
// the single translation both Run's validation and runOnSession use,
// so the two entry points cannot drift.
func (cfg RunConfig) session() SessionConfig {
	return SessionConfig{
		Workers:         cfg.Procs,
		Vars:            cfg.Vars,
		Seed:            cfg.Seed,
		SimSteps:        cfg.SimSteps,
		Record:          cfg.Record,
		QuiesceEvery:    cfg.QuiesceEvery,
		Live:            cfg.Live,
		LiveSegmentTxns: cfg.LiveSegmentTxns,
		LiveTailWindow:  cfg.LiveTailWindow,
		Shards:          cfg.Shards,
		Telemetry:       cfg.Telemetry,
	}
}

// runOnSession is the batch Run semantics expressed on a Session: open
// with the run's shape, keep each worker's lane topped up with one
// round at a time (so a terminal body error stops that worker's
// remaining rounds, exactly like the old per-process loops), drain,
// close, and refold the session's counters into Stats.
func runOnSession(e Engine, cfg RunConfig, body TxBody) (Stats, error) {
	s, err := e.Open(cfg.session())
	if err != nil {
		return Stats{}, err
	}
	var (
		mu       sync.Mutex
		firstErr error
		wg       sync.WaitGroup
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	// expected classifies a pump result that ends a worker's rounds
	// without being a body error: the session stopped or ran out of
	// budget (the violation or budget condition surfaces elsewhere).
	expected := func(err error) bool {
		return errors.Is(err, ErrStopped) || errors.Is(err, ErrStepBudget) || errors.Is(err, ErrClosed)
	}
	wg.Add(cfg.Procs)
	var pump func(p, round int)
	pump = func(p, round int) {
		if cfg.OpsPerProc > 0 && round >= cfg.OpsPerProc {
			wg.Done()
			return
		}
		err := s.SubmitOn(p, func(tx Tx) error { return body(p, round, tx) }, func(res error) {
			switch {
			case res == nil, errors.Is(res, ErrNoCommit):
				pump(p, round+1)
			default:
				if !expected(res) {
					fail(res)
				}
				wg.Done()
			}
		})
		if err != nil {
			if !expected(err) {
				fail(err)
			}
			wg.Done()
		}
	}
	for p := 0; p < cfg.Procs; p++ {
		pump(p, 0)
	}
	// Drain drives the simulated scheduler; the pump callbacks running
	// inside it keep every worker's next round enqueued before the
	// previous one is accounted complete, so the drain cannot return
	// between rounds.
	_ = s.Drain(context.Background())
	wg.Wait()

	rep, cerr := s.Close()
	sst := s.Stats()
	st := Stats{
		Commits:        sst.Commits,
		Aborts:         sst.Aborts,
		NoCommits:      sst.NoCommits,
		PerProcCommits: sst.PerWorkerCommits,
		Steps:          sst.Steps,
		History:        s.History(),
		Live:           rep,
		Stopped:        sst.Stopped,
		BackoffCap:     sst.BackoffCap,
		BackoffBias:    sst.BackoffBias,
		RecorderChunks: sst.RecorderChunks,
		Truncated:      sst.Truncated,
		Shards:         sst.Shards,
		CutLatency:     sst.CutLatency,
		ShardCuts:      sst.ShardCuts,
	}
	if cerr != nil && !errors.Is(cerr, ErrStepBudget) {
		return st, cerr
	}
	if firstErr != nil {
		return st, firstErr
	}
	return st, nil
}
