package engine

import (
	"livetm/internal/core"
	"livetm/internal/native"
)

// Engines returns every registered (algorithm, substrate) pair behind
// the unified interface: the simulated TMs of core.Registry followed
// by the native algorithms of native.Algorithms. With ablations set,
// the simulated ablation variants are included.
func Engines(ablations bool) []Engine {
	var out []Engine
	for _, nf := range core.Registry(ablations) {
		out = append(out, NewSim(nf.Name, nf.Factory, nf.Expected.SoloUnderCrash))
	}
	for _, info := range native.Algorithms() {
		out = append(out, NewNative(info))
	}
	return out
}

// Lookup returns the engine with the given report name (e.g.
// "sim-tl2", "native-tl2"), or false.
func Lookup(name string) (Engine, bool) {
	for _, e := range Engines(true) {
		if e.Name() == name {
			return e, true
		}
	}
	return nil, false
}
