package engine

import (
	"strconv"

	"livetm/internal/native"
	"livetm/internal/record"
	"livetm/internal/safety"
	"livetm/internal/telemetry"
)

// sessionMetrics is a session's pre-resolved telemetry handle bundle.
// The Stats-backing handles (submitted, completed, commits, noCommits,
// aborts*, cutPause, queue gauges) are always non-nil: with no registry
// they are bare (unregistered) instruments, which cost exactly what the
// ad-hoc atomics they replaced cost, so the hot paths carry no nil
// checks and SessionStats has one source of truth either way. The
// clock-involving extras (execLat, tx) and the live-monitor gauges are
// nil without a registry: they are pure observability, and skipping
// them is what makes a registry-free session the uninstrumented
// baseline the overhead benchmark compares against.
type sessionMetrics struct {
	submitted *telemetry.Counter
	completed *telemetry.Counter
	noCommits *telemetry.Counter
	commits   []*telemetry.Counter // per worker slot

	// abortsConflict/abortsOperation back the simulated substrate's
	// abort accounting (the native substrate reads its TM's own
	// counters); they land in the same livetm_tx_aborts_total family
	// the native retry loop uses.
	abortsConflict  *telemetry.Counter
	abortsOperation *telemetry.Counter

	queueShared *telemetry.Gauge
	queuePinned *telemetry.Gauge
	workers     *telemetry.Gauge
	admissions  *telemetry.Counter

	// cutPause is the per-shard quiescent-cut pause-latency histogram;
	// it is the single sampling path behind SessionStats.CutLatency and
	// ShardCuts (no separate reservoir).
	cutPause []*telemetry.Histogram

	// execLat times whole submissions (queue exit to completion).
	// Nil without a registry: skip the clock reads.
	execLat *telemetry.Histogram

	// tx instruments the native retry loop. Nil without a registry
	// (native.RunOpts.Metrics is nil-gated there).
	tx *native.TxMetrics

	// rec and checker are handed to the recorder and the live checker
	// at open time; nil leaves those layers on their bare defaults.
	rec     *record.Metrics
	checker *safety.CheckerMetrics

	// Live-monitor gauges, synced from the pump's rebias tick. Nil
	// without a registry.
	class      *telemetry.Gauge
	starvation []*telemetry.Gauge // per worker slot
	bias       []*telemetry.Gauge // per worker slot
}

// newSessionMetrics resolves (or, with reg nil, fabricates bare
// versions of) the session's instruments. algo is the engine name
// labelling the transaction families; workers is the provisioned slot
// count (MaxWorkers on the native substrate), shards the cut-group
// count, live whether the monitor gauges and checker telemetry apply.
// The algo label is the engine registry's Info.Name — a finite,
// compiled-in set of engine names, not client input; the telemetrylabel
// classifier cannot prove that through the registry lookup, hence the
// allowance.
//
//lint:allow(telemetrylabel) algo is engine.Info.Name from the fixed engine registry, a finite compiled-in set
func newSessionMetrics(reg *telemetry.Registry, algo string, workers, shards int, live bool) *sessionMetrics {
	m := &sessionMetrics{
		commits:  make([]*telemetry.Counter, workers),
		cutPause: make([]*telemetry.Histogram, shards),
	}
	if reg == nil {
		m.submitted = &telemetry.Counter{}
		m.completed = &telemetry.Counter{}
		m.noCommits = &telemetry.Counter{}
		m.abortsConflict = &telemetry.Counter{}
		m.abortsOperation = &telemetry.Counter{}
		m.queueShared = &telemetry.Gauge{}
		m.queuePinned = &telemetry.Gauge{}
		m.workers = &telemetry.Gauge{}
		m.admissions = &telemetry.Counter{}
		for i := range m.commits {
			m.commits[i] = &telemetry.Counter{}
		}
		for k := range m.cutPause {
			m.cutPause[k] = &telemetry.Histogram{}
		}
		return m
	}
	m.submitted = reg.Counter("livetm_session_submitted_total",
		"Transactions accepted by the session")
	m.completed = reg.Counter("livetm_session_completed_total",
		"Transactions completed (committed, declined, or failed)")
	m.noCommits = reg.Counter("livetm_session_nocommits_total",
		"Transactions declined without a commit attempt (ErrNoCommit)")
	m.abortsConflict = reg.Counter("livetm_tx_aborts_total",
		"Aborted attempts by cause", "algo", algo, "cause", "conflict")
	m.abortsOperation = reg.Counter("livetm_tx_aborts_total",
		"Aborted attempts by cause", "algo", algo, "cause", "operation")
	m.queueShared = reg.Gauge("livetm_session_queue_depth",
		"Pending submissions per lane", "lane", "shared")
	m.queuePinned = reg.Gauge("livetm_session_queue_depth",
		"Pending submissions per lane", "lane", "pinned")
	m.workers = reg.Gauge("livetm_session_workers",
		"Admitted workers")
	m.admissions = reg.Counter("livetm_session_admissions_total",
		"Workers admitted after open (AddWorkers)")
	m.execLat = reg.Histogram("livetm_session_exec_latency_ns",
		"Submission latency from queue exit to completion, nanoseconds")
	for i := range m.commits {
		m.commits[i] = reg.Counter("livetm_session_commits_total",
			"Committed transactions per worker", "worker", strconv.Itoa(i))
	}
	for k := range m.cutPause {
		m.cutPause[k] = reg.Histogram("livetm_cut_pause_ns",
			"Quiescent-cut pause latency per shard, nanoseconds", "shard", strconv.Itoa(k))
	}
	m.rec = &record.Metrics{
		Events: reg.Counter("livetm_recorder_events_total",
			"Events stamped into the per-process logs"),
		Chunks: reg.Gauge("livetm_recorder_chunks",
			"Event-buffer chunks currently allocated"),
		Recycled: reg.Counter("livetm_recorder_recycled_total",
			"Drop-mode ring-chunk reuses"),
		Dropped: reg.Counter("livetm_recorder_dropped_total",
			"Events the live stream lost after a stop muted a publisher"),
	}
	if live {
		m.checker = &safety.CheckerMetrics{
			Lanes: make([]safety.LaneTelemetry, shards),
			Merge: checkerLane(reg, "merge"),
		}
		for k := range m.checker.Lanes {
			m.checker.Lanes[k] = checkerLane(reg, strconv.Itoa(k))
		}
		m.class = reg.Gauge("livetm_monitor_liveness_class",
			"Current liveness class of the run, strongest-first ordinal (0 none, 1 solo, 2 global, 3 2-progress, 4 local)")
		m.starvation = make([]*telemetry.Gauge, workers)
		m.bias = make([]*telemetry.Gauge, workers)
		for i := range m.starvation {
			proc := strconv.Itoa(i)
			m.starvation[i] = reg.Gauge("livetm_monitor_starvation",
				"Current commit gap per process, in observed events", "proc", proc)
			m.bias[i] = reg.Gauge("livetm_backoff_bias",
				"Starvation-feedback backoff bias per process", "proc", proc)
		}
	}
	return m
}

func checkerLane(reg *telemetry.Registry, shard string) safety.LaneTelemetry {
	return safety.LaneTelemetry{
		Segments: reg.Counter("livetm_checker_segments_total",
			"Segments the streaming checker verified per lane", "shard", shard),
		Forced: reg.Counter("livetm_checker_forced_total",
			"Forced serialization frontiers per lane", "shard", shard),
		Relaxed: reg.Counter("livetm_checker_relaxed_total",
			"Straddler reads waived per lane", "shard", shard),
		Buffered: reg.Gauge("livetm_checker_lane_lag",
			"Buffered events per lane (lag behind the producers)", "shard", shard),
	}
}

// syncLive pushes the live monitor's current view into the gauges.
// Runs on the pump goroutine (the monitor's owner) at each rebias
// tick, so the monitor reads are race-free.
func (m *sessionMetrics) syncLive(class string, starvation []int, bias []int) {
	if m.class == nil {
		return
	}
	m.class.Set(livenessOrdinal(class))
	for i, s := range starvation {
		if i < len(m.starvation) {
			m.starvation[i].Set(int64(s))
		}
	}
	for i, b := range bias {
		if i < len(m.bias) {
			m.bias[i].Set(int64(b))
		}
	}
}

// livenessOrdinal maps a liveness-class name onto a strongest-first
// ordinal, so the gauge moves up as the observed run strengthens.
func livenessOrdinal(class string) int64 {
	switch class {
	case "local progress":
		return 4
	case "2-progress":
		return 3
	case "global progress":
		return 2
	case "solo progress":
		return 1
	default:
		return 0
	}
}

// histCutStats folds one cut-pause histogram into the CutStats shape.
func histCutStats(h *telemetry.Histogram) CutStats {
	n := h.Count()
	if n == 0 {
		return CutStats{}
	}
	return CutStats{Count: n, P50ns: h.Quantile(0.5), P99ns: h.Quantile(0.99)}
}
