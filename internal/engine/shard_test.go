package engine

import (
	"strings"
	"testing"

	"livetm/internal/monitor"
)

// disjointBody gives each process its own counter, so a sharded
// session with procs == shards keeps every transaction inside its
// home shard.
func disjointBody() TxBody {
	return func(proc, round int, tx Tx) error {
		v, err := tx.Read(proc)
		if err != nil {
			return err
		}
		return tx.Write(proc, v+1)
	}
}

// TestShardConfigValidation: the shard knob's fitness rules surface as
// configuration errors, not as runtime misbehavior.
func TestShardConfigValidation(t *testing.T) {
	native, _ := Lookup("native-tl2")
	sim, _ := Lookup("sim-tl2")
	cases := []struct {
		name string
		e    Engine
		cfg  RunConfig
	}{
		{"not power of two", native, RunConfig{Procs: 6, Vars: 6, OpsPerProc: 4, Record: true, Shards: 3}},
		{"without record or live", native, RunConfig{Procs: 4, Vars: 4, OpsPerProc: 4, Shards: 2}},
		{"more shards than procs", native, RunConfig{Procs: 2, Vars: 8, OpsPerProc: 4, Record: true, Shards: 4}},
		{"not dividing procs", native, RunConfig{Procs: 6, Vars: 8, OpsPerProc: 4, Record: true, Shards: 4}},
		{"more shards than vars", native, RunConfig{Procs: 4, Vars: 2, OpsPerProc: 4, Record: true, Shards: 4}},
		{"simulated substrate", sim, RunConfig{Procs: 4, Vars: 4, SimSteps: 100, Record: true, Shards: 2}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := tc.e.Run(tc.cfg, disjointBody()); err == nil {
				t.Fatalf("config %+v accepted", tc.cfg)
			}
		})
	}
}

// TestShardedLiveAgreesWithSingleChecker is the engine-level half of
// the sharded-equals-single property: a sharded live run's verdict
// must match a post-hoc single-checker replay of the same history, and
// the per-shard cut accounting must add up. Run with -race.
func TestShardedLiveAgreesWithSingleChecker(t *testing.T) {
	for _, body := range []struct {
		name string
		fn   TxBody
		vars int
	}{
		{"disjoint", disjointBody(), 4},
		// Every process hammers both shards: the spanning degrade path
		// (global cuts) and the checker's cross-shard merges.
		{"spanning", mixedBody(4), 4},
	} {
		t.Run(body.name, func(t *testing.T) {
			e, ok := Lookup("native-tl2")
			if !ok {
				t.Fatal("native-tl2 not registered")
			}
			const procs, ops, shards = 4, 200, 4
			st, err := e.Run(RunConfig{
				Procs: procs, Vars: body.vars, OpsPerProc: ops,
				Record: true, Live: true, QuiesceEvery: 4, Shards: shards,
			}, body.fn)
			if err != nil {
				t.Fatal(err)
			}
			if st.Shards != shards {
				t.Fatalf("Stats.Shards = %d, want %d", st.Shards, shards)
			}
			if len(st.ShardCuts) != shards {
				t.Fatalf("ShardCuts covers %d shards, want %d", len(st.ShardCuts), shards)
			}
			var sum uint64
			for _, cs := range st.ShardCuts {
				sum += cs.Count
			}
			if sum != st.CutLatency.Count || sum == 0 {
				t.Fatalf("per-shard cuts sum to %d, total %d (want equal and nonzero)", sum, st.CutLatency.Count)
			}
			if st.Live == nil || !st.Live.Checked {
				t.Fatalf("sharded live run undecided: %+v", st.Live)
			}
			if len(st.Live.ShardSegments) != shards {
				t.Fatalf("ShardSegments covers %d lanes, want %d", len(st.Live.ShardSegments), shards)
			}
			// Replay the recorded history through an unsharded monitor:
			// the verdicts must agree.
			m, err := monitor.New(monitor.Config{})
			if err != nil {
				t.Fatal(err)
			}
			if err := m.ObserveHistory(st.History); err != nil && !strings.Contains(err.Error(), "violation") {
				t.Fatal(err)
			}
			rep := m.Report()
			if !rep.Checked {
				t.Fatal("single-checker replay undecided")
			}
			if rep.Opacity.Holds != st.Live.Opacity.Holds {
				t.Fatalf("verdict flip: sharded live says holds=%v, single checker says holds=%v (%s)",
					st.Live.Opacity.Holds, rep.Opacity.Holds, rep.Opacity.Reason)
			}
		})
	}
}
