package engine

// The cross-substrate adversary conformance suite: the environment
// strategies of the impossibility proofs (internal/adversary) driven
// against every native algorithm behind this package's registry. Each
// (strategy-variant × algorithm) cell must witness the paper's
// no-local-progress dichotomy — p1 never commits, or nobody does — and
// must emit non-empty starvation intervals for p1, tying the proofs'
// infinite histories to finite native runs.

import (
	"testing"
	"time"

	"livetm/internal/adversary"
	"livetm/internal/model"
	"livetm/internal/native"
	"livetm/internal/safety"
)

// adversaryCfg keeps the conformance cells fast enough for the CI race
// step while still sampling several starvation rounds.
func adversaryCfg() adversary.Config {
	return adversary.Config{Rounds: 3, MaxSteps: 6000, BlockTimeout: time.Second}
}

// TestAdversaryConformance asserts the dichotomy on every
// (strategy-variant × native algorithm) cell, cross-checking that each
// algorithm is reachable through the engine registry.
func TestAdversaryConformance(t *testing.T) {
	cfg := adversaryCfg()
	for _, info := range native.Algorithms() {
		if _, ok := Lookup(info.Name); !ok {
			t.Fatalf("%s is not in the engine registry", info.Name)
		}
		for _, s := range adversary.Variants() {
			t.Run(info.Name+"/"+s.Name(), func(t *testing.T) {
				cell, err := adversary.NativeCell(info, s, cfg)
				if err != nil {
					t.Fatal(err)
				}
				// The dichotomy: p1 never commits...
				if !cell.Dichotomy() {
					t.Fatalf("p1 committed against %s under %s", info.Name, s.Name())
				}
				// ...and when the run was not blocked, p2 commits round
				// after round — the starving branch.
				if !cell.Blocked && cell.Rounds < cfg.Rounds {
					t.Errorf("unblocked cell completed only %d/%d rounds", cell.Rounds, cfg.Rounds)
				}
				if cell.Blocked && cell.Rounds != 0 {
					t.Errorf("the blocking branch must block from the first round, got %d", cell.Rounds)
				}
				iv := cell.Starvation["p1"]
				if len(iv.Intervals) == 0 || iv.Max == 0 {
					t.Errorf("p1 must emit non-empty starvation intervals, got %+v", iv)
				}
			})
		}
	}
}

// TestAdversaryCrossSubstrateComparison runs the full matrix and
// checks that the two substrates agree on the shape of every cell: the
// same dichotomy branch, and on the starving branch the same order of
// starvation (p1's interval spans the whole run on both).
func TestAdversaryCrossSubstrateComparison(t *testing.T) {
	cells, err := adversary.RunMatrix(adversaryCfg())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(cells); i += 2 {
		nat, sim := cells[i], cells[i+1]
		if nat.Blocked != sim.Blocked {
			t.Errorf("%s on %s: substrates disagree on blocking (native=%v sim=%v)",
				nat.Strategy, nat.Algorithm, nat.Blocked, sim.Blocked)
		}
		if nat.Blocked {
			continue
		}
		for _, c := range []adversary.Cell{nat, sim} {
			p1 := c.Starvation["p1"]
			if p1.Open == 0 || p1.Open != p1.Max {
				t.Errorf("%s on %s: a starving p1's open gap must be its longest interval, got %+v",
					c.Strategy, c.Engine, p1)
			}
		}
	}
}

// committedP1Variant builds the would-be terminating history of
// Figures 8 and 11 from a recorded adversary run: p1's real
// continuation after its last successful read is dropped and replaced
// by the write and commit the strategy was angling for. The
// construction requires at least one p2 commit after the read — the
// stale window — which every unblocked cell provides.
func committedP1Variant(h model.History) (model.History, bool) {
	last := -1
	var val model.Value
	for i, e := range h {
		if e.Proc == 1 && e.Kind == model.RespValue {
			last, val = i, e.Val
		}
	}
	if last < 0 {
		return nil, false
	}
	out := append(model.History{}, h[:last+1]...)
	staleWindow := false
	for _, e := range h[last+1:] {
		if e.Proc == 1 {
			continue // drop p1's real (aborting) continuation
		}
		if e.Proc == 2 && e.Kind == model.RespCommit {
			staleWindow = true
		}
		out = append(out, e)
	}
	if !staleWindow {
		return nil, false
	}
	out = append(out,
		model.Write(1, adversary.X, val+1), model.OK(1),
		model.TryCommit(1), model.Commit(1))
	return out, true
}

// TestAdversaryCommittedP1NotOpaque is the property behind the
// dichotomy: for every native algorithm and every strategy variant,
// the history the adversary recorded would not be opaque had p1
// committed. A TM that let p1 commit would therefore have violated
// safety — which is exactly why every correct TM starves it.
func TestAdversaryCommittedP1NotOpaque(t *testing.T) {
	cfg := adversaryCfg()
	for _, info := range native.Algorithms() {
		if info.Name == "native-mutex" {
			// The mutex blocks the adversary: p1's read window never
			// sees a p2 commit, so the Figure 8 history does not arise —
			// that is the dichotomy's other branch.
			continue
		}
		for _, s := range adversary.Variants() {
			t.Run(info.Name+"/"+s.Name(), func(t *testing.T) {
				res, err := adversary.RunNative(info, s, cfg)
				if err != nil {
					t.Fatal(err)
				}
				flipped, ok := committedP1Variant(res.History)
				if !ok {
					t.Fatalf("no stale read window in the recorded history (%d events)", len(res.History))
				}
				if err := model.CheckWellFormed(flipped); err != nil {
					t.Fatalf("flipped history malformed: %v", err)
				}
				seg, err := safety.CheckOpacitySegmented(flipped, 32)
				if err != nil {
					t.Fatalf("checking flipped history: %v", err)
				}
				if seg.Holds {
					t.Fatalf("a committed p1 must not be opaque (Figures 8/11), but the checker accepted:\n%s", flipped)
				}
			})
		}
	}
}
