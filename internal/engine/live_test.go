package engine

import (
	"errors"
	"sync/atomic"
	"testing"

	"livetm/internal/native"
)

// bogusTM is a deliberately broken "TM" for violation injection: every
// read returns a fresh value nobody ever wrote, which no legal
// serialization can explain, and every commit succeeds. It implements
// the full ObservableTM surface so the live monitor can watch it fail.
type bogusTM struct {
	vars    int
	ctr     atomic.Int64
	commits atomic.Uint64
}

type bogusTxn struct{ tm *bogusTM }

func (tx bogusTxn) Read(i int) (int64, error)  { return 1000 + tx.tm.ctr.Add(1), nil }
func (tx bogusTxn) Write(i int, v int64) error { return nil }

func (b *bogusTM) Name() string        { return "native-bogus" }
func (b *bogusTM) Vars() int           { return b.vars }
func (b *bogusTM) Stats() native.Stats { return native.Stats{Commits: b.commits.Load()} }

func (b *bogusTM) Atomically(fn func(native.Txn) error) error {
	return b.AtomicallyOpts(native.RunOpts{}, fn)
}

func (b *bogusTM) AtomicallyObserved(obs native.Observer, fn func(native.Txn) error) error {
	return b.AtomicallyOpts(native.RunOpts{Observer: obs}, fn)
}

func (b *bogusTM) AtomicallyOpts(opts native.RunOpts, fn func(native.Txn) error) error {
	if opts.Stop != nil {
		select {
		case <-opts.Stop:
			return native.ErrStopped
		default:
		}
	}
	obs := opts.Observer
	tx := bogusTxn{tm: b}
	var wrapped native.Txn = tx
	if obs != nil {
		wrapped = bogusObserved{tx: tx, obs: obs}
	}
	if err := fn(wrapped); err != nil {
		if obs != nil {
			obs.Abandon()
		}
		return err
	}
	if obs != nil {
		obs.TryCommitInv()
	}
	b.commits.Add(1)
	if obs != nil {
		obs.TryCommitReturn(true)
	}
	return nil
}

type bogusObserved struct {
	tx  bogusTxn
	obs native.Observer
}

func (o bogusObserved) Read(i int) (int64, error) {
	o.obs.ReadInv(i)
	v, err := o.tx.Read(i)
	o.obs.ReadReturn(i, v, false)
	return v, err
}

func (o bogusObserved) Write(i int, v int64) error {
	o.obs.WriteInv(i, v)
	err := o.tx.Write(i, v)
	o.obs.WriteReturn(i, v, false)
	return err
}

func bogusEngine() *NativeEngine {
	return NewNative(native.Info{
		Name: "native-bogus", Nonblocking: true,
		New: func(n int) (native.TM, error) { return &bogusTM{vars: n}, nil },
	})
}

// TestLiveMonitorStopsViolatingRun is the acceptance check for
// mid-flight cancellation: a native run whose TM serves impossible
// reads must be stopped by the live monitor long before its budget,
// with the violation verdict in the stats. Run with -race.
func TestLiveMonitorStopsViolatingRun(t *testing.T) {
	const procs, ops = 3, 200000
	st, err := bogusEngine().Run(RunConfig{
		Procs: procs, Vars: 2, OpsPerProc: ops, Live: true,
	}, func(proc, round int, tx Tx) error {
		_, err := tx.Read(0)
		return err
	})
	if !errors.Is(err, ErrLiveViolation) {
		t.Fatalf("err = %v, want ErrLiveViolation", err)
	}
	if !st.Stopped {
		t.Error("Stats.Stopped must report the cancellation")
	}
	if st.Live == nil {
		t.Fatal("no live report")
	}
	if !st.Live.Checked || st.Live.Opacity.Holds {
		t.Fatalf("live verdict must be a violation: %+v", st.Live.Opacity)
	}
	if st.Live.Opacity.Reason == "" {
		t.Error("violation verdict must carry a reason")
	}
	if st.Commits >= uint64(procs*ops) {
		t.Fatalf("run completed its whole budget (%d commits) — not stopped mid-flight", st.Commits)
	}
	// The violation surfaces within the first checker window (~50
	// transactions), so the stop must land well inside the budget.
	if st.Commits > uint64(procs)*10000 {
		t.Errorf("stop took %d commits — suspiciously late", st.Commits)
	}
}

// TestLiveMonitorHealthyRun: a correct TM under live monitoring
// completes its full budget with a holding verdict, per-process
// accounting, and capped recorder allocation (no history retained
// without Record). Run with -race.
func TestLiveMonitorHealthyRun(t *testing.T) {
	e, ok := Lookup("native-tl2")
	if !ok {
		t.Fatal("native-tl2 not registered")
	}
	const procs, ops = 4, 300
	st, err := e.Run(RunConfig{Procs: procs, Vars: 1, OpsPerProc: ops, Live: true}, counterBody(0))
	if err != nil {
		t.Fatal(err)
	}
	if st.Stopped {
		t.Fatal("healthy run was stopped")
	}
	if st.Commits != uint64(procs*ops) {
		t.Fatalf("commits = %d, want %d", st.Commits, procs*ops)
	}
	if st.Live == nil || !st.Live.Checked || !st.Live.Opacity.Holds {
		t.Fatalf("healthy run verdict: %+v", st.Live)
	}
	if len(st.Live.Procs) != procs {
		t.Fatalf("live report covers %d procs, want %d", len(st.Live.Procs), procs)
	}
	if st.History != nil {
		t.Error("Live without Record must not retain the history")
	}
	if st.RecorderChunks > procs {
		t.Errorf("live run allocated %d chunks, want <= %d (ring per process)", st.RecorderChunks, procs)
	}
	if st.BackoffCap != native.DefaultBackoffCap {
		t.Errorf("BackoffCap = %d, want %d", st.BackoffCap, native.DefaultBackoffCap)
	}
	if len(st.BackoffBias) != procs {
		t.Errorf("BackoffBias covers %d procs, want %d", len(st.BackoffBias), procs)
	}
	for p, b := range st.BackoffBias {
		if b < -native.MaxBias || b > native.MaxBias {
			t.Errorf("p%d bias %d outside ±%d", p, b, native.MaxBias)
		}
	}
}

// TestLiveWithRecordRetainsHistory: Live plus Record streams to the
// monitor and retains the history; the monitor saw exactly the events
// that were recorded. Run with -race.
func TestLiveWithRecordRetainsHistory(t *testing.T) {
	e, _ := Lookup("native-norec")
	const procs, ops = 2, 100
	st, err := e.Run(RunConfig{
		Procs: procs, Vars: 2, OpsPerProc: ops, Live: true, Record: true, QuiesceEvery: 4,
	}, mixedBody(2))
	if err != nil {
		t.Fatal(err)
	}
	if st.History == nil {
		t.Fatal("Record was set but no history came back")
	}
	if st.Live == nil {
		t.Fatal("no live report")
	}
	if st.Live.Events != len(st.History) {
		t.Errorf("monitor observed %d events, history has %d", st.Live.Events, len(st.History))
	}
	if !st.Live.Checked || !st.Live.Opacity.Holds {
		t.Fatalf("healthy recorded run verdict: %+v", st.Live.Opacity)
	}
}

// TestLiveRejectedOnSim: the simulated substrate refuses Live.
func TestLiveRejectedOnSim(t *testing.T) {
	e, ok := Lookup("sim-tl2")
	if !ok {
		t.Fatal("sim-tl2 not registered")
	}
	_, err := e.Run(RunConfig{Procs: 2, Vars: 1, SimSteps: 100, Live: true}, counterBody(0))
	if err == nil {
		t.Fatal("simulated engine accepted Live")
	}
}
