package engine

import (
	"fmt"
	"sync/atomic"

	"livetm/internal/model"
	"livetm/internal/sim"
	"livetm/internal/stm"
)

// Sim adapts a simulated TM (an stm.Factory driven by the
// cooperative scheduler) to the Engine interface. Open starts a
// long-lived demand-driven Session (see Session); Run is the batch
// convenience wrapper over one.
type Sim struct {
	algorithm   string
	factory     stm.Factory
	nonblocking bool
	busy        atomic.Bool
}

var _ Engine = (*Sim)(nil)

// NewSim wraps a simulated TM factory. nonblocking mirrors the
// paper's resilience claim for the algorithm (core.Registry's
// SoloUnderCrash expectation).
func NewSim(algorithm string, factory stm.Factory, nonblocking bool) *Sim {
	return &Sim{algorithm: algorithm, factory: factory, nonblocking: nonblocking}
}

// Name implements Engine.
func (e *Sim) Name() string { return "sim-" + e.algorithm }

// Algorithm implements Engine.
func (e *Sim) Algorithm() string { return e.algorithm }

// Capabilities implements Engine.
func (e *Sim) Capabilities() Capabilities {
	return Capabilities{
		Substrate:           Simulated,
		RealConcurrency:     false,
		DeterministicReplay: true,
		HistoryRecording:    true,
		Nonblocking:         e.nonblocking,
	}
}

// simTx adapts the request/response operational interface to the
// engine's error-based one. After any abort the handle is dead.
type simTx struct {
	tm      stm.TM
	env     *sim.Env
	vars    int
	aborted bool
}

func (tx *simTx) Read(i int) (int64, error) {
	if tx.aborted {
		return 0, ErrAborted
	}
	if i < 0 || i >= tx.vars {
		return 0, fmt.Errorf("engine: variable %d out of range", i)
	}
	v, st := tx.tm.Read(tx.env, model.TVar(i))
	if st != stm.OK {
		tx.aborted = true
		return 0, ErrAborted
	}
	return int64(v), nil
}

func (tx *simTx) Write(i int, v int64) error {
	if tx.aborted {
		return ErrAborted
	}
	if i < 0 || i >= tx.vars {
		return fmt.Errorf("engine: variable %d out of range", i)
	}
	if tx.tm.Write(tx.env, model.TVar(i), model.Value(v)) != stm.OK {
		tx.aborted = true
		return ErrAborted
	}
	return nil
}

// Open implements Engine: it starts a demand-driven session under the
// deterministic cooperative scheduler on a fresh TM instance.
func (e *Sim) Open(cfg SessionConfig) (*Session, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(Simulated); err != nil {
		return nil, err
	}
	b, err := openSimSession(e.Name(), e.factory, cfg)
	if err != nil {
		return nil, err
	}
	return &Session{name: e.Name(), b: b}, nil
}

// Run implements Engine as a batch wrapper over Open: one session,
// cfg.Procs workers, OpsPerProc pinned rounds per worker (0 keeps
// every worker loaded until the step budget runs out). A second
// concurrent Run on the same engine value returns ErrBusy.
func (e *Sim) Run(cfg RunConfig, body TxBody) (Stats, error) {
	if err := cfg.validate(Simulated); err != nil {
		return Stats{}, err
	}
	if !e.busy.CompareAndSwap(false, true) {
		return Stats{}, ErrBusy
	}
	defer e.busy.Store(false)
	return runOnSession(e, cfg, body)
}
