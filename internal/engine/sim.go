package engine

import (
	"errors"
	"fmt"

	"livetm/internal/model"
	"livetm/internal/sim"
	"livetm/internal/stm"
)

// Sim adapts a simulated TM (an stm.Factory driven by the
// cooperative scheduler) to the Engine interface.
type Sim struct {
	algorithm   string
	factory     stm.Factory
	nonblocking bool
}

var _ Engine = (*Sim)(nil)

// NewSim wraps a simulated TM factory. nonblocking mirrors the
// paper's resilience claim for the algorithm (core.Registry's
// SoloUnderCrash expectation).
func NewSim(algorithm string, factory stm.Factory, nonblocking bool) *Sim {
	return &Sim{algorithm: algorithm, factory: factory, nonblocking: nonblocking}
}

// Name implements Engine.
func (e *Sim) Name() string { return "sim-" + e.algorithm }

// Algorithm implements Engine.
func (e *Sim) Algorithm() string { return e.algorithm }

// Capabilities implements Engine.
func (e *Sim) Capabilities() Capabilities {
	return Capabilities{
		Substrate:           Simulated,
		RealConcurrency:     false,
		DeterministicReplay: true,
		HistoryRecording:    true,
		Nonblocking:         e.nonblocking,
	}
}

// simTx adapts the request/response operational interface to the
// engine's error-based one. After any abort the handle is dead.
type simTx struct {
	tm      stm.TM
	env     *sim.Env
	vars    int
	aborted bool
}

func (tx *simTx) Read(i int) (int64, error) {
	if tx.aborted {
		return 0, ErrAborted
	}
	if i < 0 || i >= tx.vars {
		return 0, fmt.Errorf("engine: variable %d out of range", i)
	}
	v, st := tx.tm.Read(tx.env, model.TVar(i))
	if st != stm.OK {
		tx.aborted = true
		return 0, ErrAborted
	}
	return int64(v), nil
}

func (tx *simTx) Write(i int, v int64) error {
	if tx.aborted {
		return ErrAborted
	}
	if i < 0 || i >= tx.vars {
		return fmt.Errorf("engine: variable %d out of range", i)
	}
	if tx.tm.Write(tx.env, model.TVar(i), model.Value(v)) != stm.OK {
		tx.aborted = true
		return ErrAborted
	}
	return nil
}

// Run implements Engine.
func (e *Sim) Run(cfg RunConfig, body TxBody) (Stats, error) {
	if err := cfg.validate(Simulated); err != nil {
		return Stats{}, err
	}
	tm := e.factory(cfg.Procs, cfg.Vars)
	var rec *stm.Recorder
	if cfg.Record {
		rec = stm.NewRecorder(tm)
		tm = rec
	}
	s := sim.New(sim.NewSeeded(cfg.Seed))
	defer s.Close()

	commits := make([]uint64, cfg.Procs)
	var aborts, noCommits uint64
	var failed bool
	errs := make([]error, cfg.Procs)
	for p := 0; p < cfg.Procs; p++ {
		proc := p
		_ = s.Spawn(model.Proc(proc+1), func(env *sim.Env) {
			for round := 0; cfg.OpsPerProc == 0 || round < cfg.OpsPerProc; {
				tx := &simTx{tm: tm, env: env, vars: cfg.Vars}
				err := body(proc, round, tx)
				switch {
				case errors.Is(err, ErrNoCommit):
					noCommits++
					round++
					// The implicit transaction stays live (parasitic);
					// yield so a body that issued no operation cannot
					// monopolize the scheduler.
					env.Yield()
				case err == nil && !tx.aborted:
					if tm.TryCommit(env) == stm.OK {
						commits[proc]++
						round++
					} else {
						aborts++
					}
				case err == nil || errors.Is(err, ErrAborted):
					aborts++
				default:
					// A terminal body error: stop the run. The errored
					// process's implicit transaction stays live — the
					// request/response model has no abort request to
					// issue for it, so the process behaves like a crash
					// (it holds whatever it holds), exactly as the
					// paper's model prescribes.
					errs[proc] = err
					failed = true
					return
				}
			}
		})
	}
	// Step manually rather than s.Run so a body error ends the run at
	// the next step instead of burning the whole budget.
	steps := 0
	for steps < cfg.SimSteps && !failed && s.Step() {
		steps++
	}

	st := Stats{PerProcCommits: commits, Aborts: aborts, NoCommits: noCommits, Steps: steps}
	for _, c := range commits {
		st.Commits += c
	}
	if rec != nil {
		st.History = rec.History()
	}
	for _, err := range errs {
		if err != nil {
			return st, err
		}
	}
	return st, nil
}
