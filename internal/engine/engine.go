package engine

import (
	"errors"
	"fmt"

	"livetm/internal/model"
	"livetm/internal/monitor"
	"livetm/internal/telemetry"
)

// Substrate identifies which execution substrate an engine runs on.
type Substrate string

// The two substrates.
const (
	// Simulated engines run under the deterministic cooperative
	// scheduler of internal/sim.
	Simulated Substrate = "sim"
	// Native engines run real goroutines on real cores.
	Native Substrate = "native"
)

// ErrAborted is returned by transaction operations when the current
// attempt must be retried. The runner handles it internally; bodies
// only see it if they inspect operation errors, and must return it
// (or the operation's error) unchanged. ErrAborted never crosses the
// wire — the retry loop consumes it before a submission can finish,
// and the interactive wire protocol signals a mid-attempt abort with
// TxOpResponse.Aborted (deliberately not this sentinel; see
// internal/server/interactive.go) — hence the wiresentinel allowance.
//
//lint:allow(wiresentinel) never crosses the wire: consumed by the retry loop; interactive aborts use TxOpResponse.Aborted
var ErrAborted = errors.New("engine: transaction aborted")

// ErrLiveViolation is returned by Run when the live monitor
// (RunConfig.Live) detected a safety violation and stopped the run
// mid-flight. The returned Stats carry the monitor's report
// (Stats.Live) with the failing verdict, and Stats.Stopped is true.
var ErrLiveViolation = errors.New("engine: live monitor stopped the run")

// ErrNoCommit is returned by a body to finish a round without
// attempting to commit — the parasitic behaviour of the paper's §3.1:
// the process keeps issuing operations but never tries to complete a
// transaction. On the simulated substrate the implicit transaction
// simply continues; on the native substrate the attempt is abandoned.
var ErrNoCommit = errors.New("engine: body declined to commit")

// Tx is the per-attempt transaction handle, identical across
// substrates: int64 values over a fixed variable array.
type Tx interface {
	// Read returns the value of variable i, or ErrAborted.
	Read(i int) (int64, error)
	// Write buffers v into variable i, or returns ErrAborted.
	Write(i int, v int64) error
}

// TxBody is one transaction of a workload. proc is the zero-based
// process index, round counts the process's completed transactions.
// The body must be idempotent across retries: it re-reads everything
// through tx and must stop (return the error) when an operation
// fails.
type TxBody func(proc, round int, tx Tx) error

// RunConfig sizes one engine run.
type RunConfig struct {
	// Procs is the number of concurrent processes (>= 1).
	Procs int
	// Vars is the number of t-variables (>= 1).
	Vars int
	// Seed makes simulated runs reproducible (ignored by native
	// engines, whose interleavings come from the hardware).
	Seed uint64
	// OpsPerProc stops each process after that many completed rounds
	// (committed or declined transactions). Required on the native
	// substrate; 0 on the simulated substrate means "until the step
	// budget runs out".
	OpsPerProc int
	// SimSteps is the cooperative-scheduler step budget (simulated
	// substrate only). It bounds runs even when processes block
	// forever, e.g. behind a wedged lock holder.
	SimSteps int
	// Record captures the run's history in the paper's event
	// vocabulary (see Capabilities.HistoryRecording). On the simulated
	// substrate the recorder wraps the TM inside the deterministic
	// scheduler; on the native substrate the per-process recorder of
	// internal/record hangs off the algorithms' linearization-point
	// hooks.
	Record bool
	// QuiesceEvery makes a recorded native run rendezvous all
	// processes every that-many rounds (0 = never). Each rendezvous is
	// a quiescent cut in the recorded history, which the segmented and
	// streaming opacity checkers need to keep their search windows
	// bounded; unrecorded runs and throughput measurements leave it 0.
	// Live runs treat 0 as "default" (every 4 rounds) because the live
	// checker wants cuts; pass -1 to run live with no rendezvous at
	// all (the approximate fallback then carries the whole stream).
	QuiesceEvery int
	// Live attaches the online monitor to a native run: recorded
	// events stream through a bounded channel into monitor.Observe
	// while the workload executes. A safety violation cancels the
	// remaining rounds mid-flight (Run returns ErrLiveViolation), and
	// the measured per-process starvation continuously rebiases the
	// native retry loop's backoff so starved processes back off less
	// and hot ones more. Live runs rendezvous every QuiesceEvery
	// rounds (defaulting to 4 when left 0) to plant the quiescent cuts
	// that keep the live checker exact; the bounded-overlap fallback
	// absorbs windows that outrun the segment budget between cuts,
	// degrading those to an approximate verdict. Live alone does not
	// retain the history — the stream is consumed as it is produced,
	// capping recorder allocation at a ring of chunks — set Record too
	// to also get Stats.History. The simulated substrate rejects Live:
	// its deterministic histories are checked after the fact.
	Live bool
	// LiveSegmentTxns is the live monitor's per-segment transaction
	// budget (0 defaults to 48; max 64).
	LiveSegmentTxns int
	// LiveTailWindow is the live monitor's liveness-classification
	// window in events (0 defaults to 256).
	LiveTailWindow int
	// Shards partitions the keyspace and the worker pool into shard-
	// local groups with per-shard quiescent cuts and per-shard
	// streaming checkers (see SessionConfig.Shards; 0 or 1 =
	// unsharded). Native substrate, recorded or live runs only.
	Shards int
	// Telemetry registers the run's instruments in the given registry
	// (see SessionConfig.Telemetry); nil runs on bare instruments.
	Telemetry *telemetry.Registry
}

// validate defers to the session validation of the run's mapped shape
// (RunConfig.session), adding only the batch-specific budget rule, so
// the two entry points share one rule set.
func (cfg RunConfig) validate(sub Substrate) error {
	if sub == Native && cfg.OpsPerProc <= 0 {
		return fmt.Errorf("engine: native runs need a positive OpsPerProc budget")
	}
	return cfg.session().validate(sub)
}

// Stats aggregates one run.
type Stats struct {
	// Commits and Aborts count committed transactions and aborted
	// attempts across all processes.
	Commits uint64
	Aborts  uint64
	// NoCommits counts rounds a body finished with ErrNoCommit.
	NoCommits uint64
	// PerProcCommits holds each process's commit count.
	PerProcCommits []uint64
	// Steps is the number of scheduler steps consumed (simulated
	// substrate only).
	Steps int
	// History is the recorded history when RunConfig.Record was set
	// on a recording-capable engine, else nil.
	History model.History
	// Live is the online monitor's final report when RunConfig.Live
	// was set: the streaming opacity verdict over the events observed
	// and the per-process progress accounting with liveness
	// classification.
	Live *monitor.Report
	// Stopped reports that the live monitor cancelled the run
	// mid-flight; the commit counters then cover only the rounds that
	// completed before the stop.
	Stopped bool
	// BackoffCap is the retry-backoff policy's spin-shift ceiling on
	// native runs — the dynamic range the starvation-aware bias moves
	// within. Zero on the simulated substrate (no backoff loop).
	BackoffCap int
	// BackoffBias is each process's final backoff bias on native runs:
	// negative for processes the starvation feedback favoured, positive
	// for processes it penalized. Nil when Live was off (no feedback
	// ran) or on the simulated substrate.
	BackoffBias []int
	// RecorderChunks counts the event-buffer chunks the recorder
	// allocated. On a live run without Record it stays capped at one
	// reusable ring chunk per process regardless of run length.
	RecorderChunks int
	// Truncated reports that some process hit the recorder's retained-
	// buffer cap: History (and, on a Record+Live run, the live verdict)
	// covers a per-process prefix of the run, so verdicts are advisory.
	// Live-only runs retain nothing and never truncate.
	Truncated bool
	// Shards is the run's shard count (1 = unsharded).
	Shards int
	// CutLatency is the pause-latency summary over every quiescent cut
	// the run forced, and ShardCuts the per-shard breakdown when the
	// run was sharded (see SessionStats).
	CutLatency CutStats
	ShardCuts  []CutStats
}

// AbortRate is Aborts / (Commits + Aborts), or 0 with no attempts.
func (s Stats) AbortRate() float64 {
	if s.Commits+s.Aborts == 0 {
		return 0
	}
	return float64(s.Aborts) / float64(s.Commits+s.Aborts)
}

// Capabilities describes what an engine's substrate supports, so
// callers select engines by feature rather than by name.
type Capabilities struct {
	// Substrate the engine runs on.
	Substrate Substrate
	// RealConcurrency: transactions run truly in parallel, so wall-
	// clock throughput is meaningful.
	RealConcurrency bool
	// DeterministicReplay: the same RunConfig reproduces the same run
	// bit for bit.
	DeterministicReplay bool
	// HistoryRecording: Run can return the history in the paper's
	// event vocabulary for the safety checkers.
	HistoryRecording bool
	// Nonblocking: the algorithm is expected to keep correct
	// processes progressing past crashed or stalled peers (the
	// paper's resilience motivation).
	Nonblocking bool
}

// Engine is one transactional-memory algorithm on one substrate.
type Engine interface {
	// Name is the unique report name, e.g. "sim-tl2" or "native-tl2".
	Name() string
	// Algorithm is the substrate-independent algorithm name, e.g.
	// "tl2", shared by counterpart engines on the other substrate.
	Algorithm() string
	// Capabilities reports what the substrate supports.
	Capabilities() Capabilities
	// Open starts a long-lived Session: a fresh TM instance with a
	// worker pool serving client-submitted transactions until Close.
	// Any number of sessions may be open concurrently; cfg.Engine is
	// ignored (the receiver is the engine).
	Open(cfg SessionConfig) (*Session, error)
	// Run executes body as repeated transactions on cfg.Procs
	// processes and returns the aggregate statistics — the batch
	// convenience wrapper over Open: one session, OpsPerProc pinned
	// rounds per worker. Each call uses a fresh TM instance; engines
	// may be reused sequentially, and a concurrent second Run on the
	// same engine value returns ErrBusy.
	Run(cfg RunConfig, body TxBody) (Stats, error)
}
