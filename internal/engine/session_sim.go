package engine

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"livetm/internal/model"
	"livetm/internal/monitor"
	"livetm/internal/sim"
	"livetm/internal/stm"
)

// simJob is one accepted submission on the simulated substrate.
type simJob struct {
	body   Body
	done   func(error)
	demand bool
}

// simSession is the simulated-substrate session backend. One driver
// goroutine owns the cooperative scheduler; the worker pool is a set
// of sim processes that poll the session's queues at yield points. The
// driver is demand-driven: it steps the scheduler only while a caller
// blocks in Exec or Drain (or while Close drains), which is what makes
// a batch of submissions deterministic — every job is enqueued before
// the first step, and every follow-up submission from a completion
// callback happens inside a step.
//
// The substrate keeps the paper's crash semantics: a terminal body
// error has no abort request to issue for the implicit transaction, so
// the worker crashes holding whatever it holds, and the session is
// wedged — the error becomes the session's fatal condition, failing
// every outstanding and future submission.
type simSession struct {
	cfg   SessionConfig
	tm    stm.TM
	rec   *stm.Recorder
	sched *sim.Scheduler

	mu   sync.Mutex
	cond *sync.Cond
	// pinnedQ and sharedQ are the submission lanes; sim goroutines only
	// touch them inside a scheduler step, the driver and clients under
	// mu between steps.
	pinnedQ  [][]*simJob
	sharedQ  []*simJob
	inflight []*simJob // per-worker job being executed
	dead     []bool    // worker crashed on a terminal body error

	outstanding int // accepted but not completed jobs
	demand      int // outstanding jobs a caller blocks on
	draining    int // Drain callers (and Close) currently waiting
	steps       int
	closing     bool
	closed      bool
	fatal       error

	// met backs every SessionStats counter (bare instruments without a
	// registry); commit-failure aborts count as cause=conflict, body-
	// level aborts as cause=operation. Always non-nil.
	met *sessionMetrics

	driverDone chan struct{}
	closeDone  chan struct{} // the winning close finished finalizing
	hist       model.History
}

// openSimSession builds the TM, spawns the worker processes and starts
// the driver. cfg has defaults applied and is validated for the
// simulated substrate.
func openSimSession(name string, factory stm.Factory, cfg SessionConfig) (*simSession, error) {
	s := &simSession{
		cfg:        cfg,
		sched:      sim.New(sim.NewSeeded(cfg.Seed)),
		pinnedQ:    make([][]*simJob, cfg.Workers),
		inflight:   make([]*simJob, cfg.Workers),
		dead:       make([]bool, cfg.Workers),
		met:        newSessionMetrics(cfg.Telemetry, name, cfg.Workers, 1, false),
		driverDone: make(chan struct{}),
		closeDone:  make(chan struct{}),
	}
	s.met.workers.Set(int64(cfg.Workers))
	s.cond = sync.NewCond(&s.mu)
	s.tm = factory(cfg.Workers, cfg.Vars)
	if cfg.Record {
		s.rec = stm.NewRecorder(s.tm)
		s.tm = s.rec
	}
	for p := 0; p < cfg.Workers; p++ {
		if err := s.sched.Spawn(model.Proc(p+1), s.workerBody(p)); err != nil {
			s.sched.Close()
			return nil, err
		}
	}
	go s.drive()
	return s, nil
}

// submit never blocks on the simulated substrate (the lanes are
// unbounded: backpressure is meaningless when execution is demand-
// driven), so the context is unused.
func (s *simSession) submit(_ context.Context, worker int, body Body, done func(error), demand bool) error {
	if worker != AnyWorker && (worker < 0 || worker >= s.cfg.Workers) {
		return fmt.Errorf("engine: worker %d out of range (have %d)", worker, s.cfg.Workers)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || s.closing {
		return ErrClosed
	}
	if s.fatal != nil {
		return s.fatal
	}
	if !demand && s.cfg.MaxQueue > 0 {
		lane := len(s.sharedQ)
		if worker != AnyWorker {
			lane = len(s.pinnedQ[worker])
		}
		if lane >= s.cfg.MaxQueue {
			return ErrOverloaded
		}
	}
	j := &simJob{body: body, done: done, demand: demand}
	if worker == AnyWorker {
		s.sharedQ = append(s.sharedQ, j)
		s.met.queueShared.Add(1)
	} else {
		s.pinnedQ[worker] = append(s.pinnedQ[worker], j)
		s.met.queuePinned.Add(1)
	}
	s.outstanding++
	s.met.submitted.Inc()
	if demand {
		s.demand++
	}
	s.cond.Broadcast()
	return nil
}

// takeLocked pops worker p's next job, alternating lane preference on
// successive takes like the native pool, so neither lane can starve
// behind sustained traffic on the other. Caller holds mu.
func (s *simSession) takeLocked(p, tick int) *simJob {
	pinned := len(s.pinnedQ[p])
	j, ok := takeAlternating(&s.pinnedQ[p], &s.sharedQ, tick)
	if !ok {
		return nil
	}
	if len(s.pinnedQ[p]) < pinned {
		s.met.queuePinned.Add(-1)
	} else {
		s.met.queueShared.Add(-1)
	}
	return j
}

// workerBody is worker p's sim-process loop: take a job, execute it
// through the retry loop, park while idle. Parking (not yield-
// spinning) keeps an idle worker out of the runnable set, so it
// consumes none of the step budget — exactly like the old batch
// loops, where a process with no rounds left was simply gone. A
// terminal body error crashes the worker (the loop returns with the
// implicit transaction still live).
func (s *simSession) workerBody(p int) func(*sim.Env) {
	return func(env *sim.Env) {
		for tick := 0; ; tick++ {
			s.mu.Lock()
			j := s.takeLocked(p, tick)
			s.inflight[p] = j
			done := s.closing && s.outstanding == 0
			if j == nil && !done {
				// Atomically with the empty-queue observation, so a
				// submission arriving now sees the parked flag and the
				// driver unparks before its next step.
				s.sched.Park(model.Proc(p + 1))
			}
			s.mu.Unlock()
			if j == nil {
				if done {
					return
				}
				env.Yield()
				continue
			}
			if !s.runJob(p, env, j) {
				return
			}
		}
	}
}

// runJob executes one submission as repeated transaction attempts
// until it commits, is declined, or fails terminally. It reports
// whether the worker survives.
func (s *simSession) runJob(p int, env *sim.Env, j *simJob) bool {
	for {
		tx := &simTx{tm: s.tm, env: env, vars: s.cfg.Vars}
		err := j.body(tx)
		switch {
		case errors.Is(err, ErrNoCommit):
			// The implicit transaction stays live (parasitic); yield so
			// a body that issued no operation cannot monopolize the
			// scheduler.
			s.finish(p, j, ErrNoCommit)
			env.Yield()
			return true
		case err == nil && !tx.aborted:
			if s.tm.TryCommit(env) == stm.OK {
				s.finish(p, j, nil)
				return true
			}
			s.met.abortsConflict.Inc()
		case err == nil || errors.Is(err, ErrAborted):
			s.met.abortsOperation.Inc()
		default:
			// A terminal body error: the process behaves like a crash
			// (it holds whatever it holds), exactly as the paper's
			// model prescribes, and the session is wedged on it.
			s.fail(p, j, err)
			return false
		}
	}
}

// finish completes one job. The callback runs before the job is
// accounted complete, so a callback that submits follow-up work never
// lets the session drain between rounds.
func (s *simSession) finish(p int, j *simJob, res error) {
	if res == nil {
		s.met.commits[p].Inc()
	} else if errors.Is(res, ErrNoCommit) {
		s.met.noCommits.Inc()
	}
	if j.done != nil {
		j.done(res)
	}
	s.mu.Lock()
	s.inflight[p] = nil
	s.completeLocked(j)
	s.mu.Unlock()
}

// completeLocked retires one accepted job. Caller holds mu.
func (s *simSession) completeLocked(j *simJob) {
	s.outstanding--
	s.met.completed.Inc()
	if j.demand {
		s.demand--
	}
	s.cond.Broadcast()
}

// fail marks the session fatally wedged on a terminal body error and
// completes the failing job; the driver fails everything else.
func (s *simSession) fail(p int, j *simJob, err error) {
	if j.done != nil {
		j.done(err)
	}
	s.mu.Lock()
	s.dead[p] = true
	if s.fatal == nil {
		s.fatal = err
	}
	s.inflight[p] = nil
	s.completeLocked(j)
	s.mu.Unlock()
}

// shouldStepLocked reports whether the driver has both work and
// demand. Caller holds mu.
func (s *simSession) shouldStepLocked() bool {
	return s.outstanding > 0 && (s.demand > 0 || s.draining > 0 || s.closing)
}

// unparkLocked wakes every parked worker that has work: its pinned
// lane is non-empty, or the shared lane is. Caller holds mu; the
// driver owns the scheduler, so parking state only changes here and in
// the workers' own (mu-guarded) park calls.
func (s *simSession) unparkLocked() {
	shared := len(s.sharedQ) > 0
	for p := 0; p < s.cfg.Workers; p++ {
		if s.dead[p] {
			continue
		}
		if shared || len(s.pinnedQ[p]) > 0 {
			s.sched.Unpark(model.Proc(p + 1))
		}
	}
}

// drive owns the scheduler: it steps while there is demanded work,
// sleeps otherwise, and on a fatal condition (terminal body error,
// exhausted step budget, or a fully wedged process set) fails every
// outstanding submission.
func (s *simSession) drive() {
	defer close(s.driverDone)
	s.mu.Lock()
	for {
		for s.fatal == nil && !s.shouldStepLocked() && !(s.closing && s.outstanding == 0) {
			s.cond.Wait()
		}
		if s.fatal != nil || (s.closing && s.outstanding == 0) {
			break
		}
		if s.steps >= s.cfg.SimSteps {
			s.fatal = ErrStepBudget
			break
		}
		s.unparkLocked()
		s.mu.Unlock()
		progressed := s.sched.Step()
		s.mu.Lock()
		if !progressed {
			// Nothing runnable — every worker crashed or finished —
			// with submissions still outstanding.
			s.fatal = fmt.Errorf("%w: no runnable process", ErrStepBudget)
			break
		}
		s.steps++
	}
	// Fail whatever is still queued or in flight; the callbacks run
	// outside the lock (they may re-enter submit and get the fatal
	// error back).
	var orphans []*simJob
	if s.fatal != nil {
		for _, q := range s.pinnedQ {
			orphans = append(orphans, q...)
		}
		for p := range s.pinnedQ {
			s.pinnedQ[p] = nil
		}
		orphans = append(orphans, s.sharedQ...)
		s.sharedQ = nil
		s.met.queuePinned.Set(0)
		s.met.queueShared.Set(0)
		for p, j := range s.inflight {
			if j != nil {
				orphans = append(orphans, j)
				s.inflight[p] = nil
			}
		}
		for _, j := range orphans {
			s.completeLocked(j)
		}
	}
	fatal := s.fatal
	s.cond.Broadcast()
	s.mu.Unlock()
	for _, j := range orphans {
		if j.done != nil {
			j.done(fatal)
		}
	}
}

func (s *simSession) drain(ctx context.Context) error {
	stop := watchCtx(ctx, func() {
		s.mu.Lock()
		s.cond.Broadcast()
		s.mu.Unlock()
	})
	defer stop()
	s.mu.Lock()
	defer s.mu.Unlock()
	s.draining++
	s.cond.Broadcast()
	defer func() { s.draining-- }()
	for s.outstanding > 0 && s.fatal == nil {
		if err := ctx.Err(); err != nil {
			return err
		}
		s.cond.Wait()
	}
	return s.fatal
}

func (s *simSession) stats() SessionStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	per := make([]uint64, s.cfg.Workers)
	var total uint64
	for p := range per {
		per[p] = s.met.commits[p].Load()
		total += per[p]
	}
	return SessionStats{
		Workers:          s.cfg.Workers,
		Submitted:        s.met.submitted.Load(),
		Completed:        s.met.completed.Load(),
		Commits:          total,
		Aborts:           s.met.abortsConflict.Load() + s.met.abortsOperation.Load(),
		NoCommits:        s.met.noCommits.Load(),
		PerWorkerCommits: per,
		Steps:            s.steps,
	}
}

func (s *simSession) addWorkers(int) error {
	return errors.New("engine: the simulated substrate has a fixed worker set")
}

func (s *simSession) close() (*monitor.Report, error) {
	s.mu.Lock()
	if s.closing || s.closed {
		s.mu.Unlock()
		// Wait for the winning close to finish finalizing, so a loser's
		// follow-up History() never races the winner's writes.
		<-s.closeDone
		return nil, ErrClosed
	}
	s.closing = true
	s.cond.Broadcast()
	s.mu.Unlock()
	defer close(s.closeDone)
	<-s.driverDone
	s.mu.Lock()
	s.closed = true
	err := s.fatal
	s.mu.Unlock()
	s.sched.Close()
	if s.rec != nil {
		s.hist = s.rec.History()
	}
	return nil, err
}

func (s *simSession) history() model.History { return s.hist }
