package explore

import (
	"errors"
	"testing"

	"livetm/internal/model"
	"livetm/internal/sim"
	"livetm/internal/stm"
)

// This file is a mutation corpus: each mutant TM contains a classic
// STM implementation bug, and the model checker must find a schedule
// exposing it. Together they validate the verification stack — a
// checker that cannot catch known bugs proves nothing by passing.

// mutantNoValidation is TL2 without commit-time read validation: a
// transaction can commit against a stale snapshot (lost update).
type mutantNoValidation struct {
	clock  uint64
	value  map[model.TVar]model.Value
	ver    map[model.TVar]uint64
	rv     map[model.Proc]uint64
	reads  map[model.Proc]map[model.TVar]struct{}
	writes map[model.Proc]map[model.TVar]model.Value
}

func newMutantNoValidation() *mutantNoValidation {
	return &mutantNoValidation{
		value:  map[model.TVar]model.Value{},
		ver:    map[model.TVar]uint64{},
		rv:     map[model.Proc]uint64{},
		reads:  map[model.Proc]map[model.TVar]struct{}{},
		writes: map[model.Proc]map[model.TVar]model.Value{},
	}
}

func (m *mutantNoValidation) Name() string { return "mutant-novalidate" }

func (m *mutantNoValidation) begin(p model.Proc) {
	if m.writes[p] == nil {
		m.rv[p] = m.clock
		m.reads[p] = map[model.TVar]struct{}{}
		m.writes[p] = map[model.TVar]model.Value{}
	}
}

func (m *mutantNoValidation) end(p model.Proc) {
	delete(m.reads, p)
	delete(m.writes, p)
}

func (m *mutantNoValidation) Read(env *sim.Env, x model.TVar) (model.Value, stm.Status) {
	p := env.Proc()
	m.begin(p)
	if v, ok := m.writes[p][x]; ok {
		env.Yield()
		return v, stm.OK
	}
	env.Yield()
	if m.ver[x] > m.rv[p] {
		m.end(p)
		return 0, stm.Aborted
	}
	m.reads[p][x] = struct{}{}
	return m.value[x], stm.OK
}

func (m *mutantNoValidation) Write(env *sim.Env, x model.TVar, v model.Value) stm.Status {
	p := env.Proc()
	m.begin(p)
	env.Yield()
	m.writes[p][x] = v
	return stm.OK
}

func (m *mutantNoValidation) TryCommit(env *sim.Env) stm.Status {
	p := env.Proc()
	m.begin(p)
	env.Yield()
	// BUG: no read-set validation before publishing.
	m.clock++
	for x, v := range m.writes[p] {
		m.value[x] = v
		m.ver[x] = m.clock
	}
	m.end(p)
	return stm.OK
}

// mutantNoUndo is an encounter-time TM that forgets to roll back its
// in-place writes on abort: aborted writes stay visible.
type mutantNoUndo struct {
	value map[model.TVar]model.Value
	owner map[model.TVar]model.Proc
	mine  map[model.Proc][]model.TVar
}

func newMutantNoUndo() *mutantNoUndo {
	return &mutantNoUndo{
		value: map[model.TVar]model.Value{},
		owner: map[model.TVar]model.Proc{},
		mine:  map[model.Proc][]model.TVar{},
	}
}

func (m *mutantNoUndo) Name() string { return "mutant-noundo" }

func (m *mutantNoUndo) release(p model.Proc) {
	for _, x := range m.mine[p] {
		if m.owner[x] == p {
			delete(m.owner, x)
		}
	}
	delete(m.mine, p)
}

func (m *mutantNoUndo) Read(env *sim.Env, x model.TVar) (model.Value, stm.Status) {
	p := env.Proc()
	env.Yield()
	if o, held := m.owner[x]; held && o != p {
		m.release(p) // BUG: releases locks but does not restore values
		return 0, stm.Aborted
	}
	return m.value[x], stm.OK
}

func (m *mutantNoUndo) Write(env *sim.Env, x model.TVar, v model.Value) stm.Status {
	p := env.Proc()
	env.Yield()
	if o, held := m.owner[x]; held && o != p {
		m.release(p)
		return stm.Aborted
	}
	if m.owner[x] != p {
		m.owner[x] = p
		m.mine[p] = append(m.mine[p], x)
	}
	m.value[x] = v // write-through, no undo image
	return stm.OK
}

func (m *mutantNoUndo) TryCommit(env *sim.Env) stm.Status {
	p := env.Proc()
	env.Yield()
	m.release(p)
	return stm.OK
}

// mutantSnapshotless is a deferred-update TM whose reads never
// validate against each other: two reads in one transaction can span
// a concurrent commit (the Figure 4 anomaly).
type mutantSnapshotless struct {
	value  map[model.TVar]model.Value
	writes map[model.Proc]map[model.TVar]model.Value
}

func newMutantSnapshotless() *mutantSnapshotless {
	return &mutantSnapshotless{
		value:  map[model.TVar]model.Value{},
		writes: map[model.Proc]map[model.TVar]model.Value{},
	}
}

func (m *mutantSnapshotless) Name() string { return "mutant-snapshotless" }

func (m *mutantSnapshotless) Read(env *sim.Env, x model.TVar) (model.Value, stm.Status) {
	env.Yield()
	if w := m.writes[env.Proc()]; w != nil {
		if v, ok := w[x]; ok {
			return v, stm.OK
		}
	}
	return m.value[x], stm.OK // BUG: no snapshot discipline at all
}

func (m *mutantSnapshotless) Write(env *sim.Env, x model.TVar, v model.Value) stm.Status {
	p := env.Proc()
	env.Yield()
	if m.writes[p] == nil {
		m.writes[p] = map[model.TVar]model.Value{}
	}
	m.writes[p][x] = v
	return stm.OK
}

func (m *mutantSnapshotless) TryCommit(env *sim.Env) stm.Status {
	p := env.Proc()
	env.Yield()
	for x, v := range m.writes[p] {
		m.value[x] = v
	}
	delete(m.writes, p)
	return stm.OK
}

// TestMutantsCaught: the model checker must find a violating schedule
// for every mutant.
func TestMutantsCaught(t *testing.T) {
	tests := []struct {
		name    string
		factory stm.Factory
		body    func(tm stm.TM, p model.Proc) func(*sim.Env)
		depth   int
	}{
		{
			name:    "no-validation loses updates",
			factory: func(n, v int) stm.TM { return newMutantNoValidation() },
			body:    oneShotIncrement,
			depth:   14,
		},
		{
			name:    "no-undo exposes aborted writes",
			factory: func(n, v int) stm.TM { return newMutantNoUndo() },
			body: func(tm stm.TM, p model.Proc) func(*sim.Env) {
				return func(env *sim.Env) {
					if p == 1 {
						// Write x0 then conflict on x1 so the
						// transaction aborts after its in-place write.
						if tm.Write(env, 0, 7) != stm.OK {
							return
						}
						tm.Write(env, 1, 1)
						return // leave live or aborted; 7 may linger
					}
					// p2 holds x1 to force p1's abort, then reads x0.
					if tm.Write(env, 1, 2) != stm.OK {
						return
					}
					tm.Read(env, 0)
					tm.TryCommit(env)
				}
			},
			depth: 12,
		},
		{
			name:    "snapshotless mixes states",
			factory: func(n, v int) stm.TM { return newMutantSnapshotless() },
			body: func(tm stm.TM, p model.Proc) func(*sim.Env) {
				return func(env *sim.Env) {
					if p == 1 {
						// Read x0 twice around p2's commit.
						tm.Read(env, 0)
						tm.Read(env, 0)
						tm.TryCommit(env)
						return
					}
					tm.Write(env, 0, 5)
					tm.TryCommit(env)
				}
			},
			depth: 12,
		},
	}
	for _, tt := range tests {
		tt := tt
		t.Run(tt.name, func(t *testing.T) {
			t.Parallel()
			sc := Scenario{NProcs: 2, NVars: 2, Factory: tt.factory, Body: tt.body}
			_, err := Run(sc, tt.depth, opacityCheck)
			var serr *ScheduleError
			if !errors.As(err, &serr) {
				t.Fatalf("mutant was not caught; err = %v", err)
			}
			t.Logf("caught with schedule %v: %v", serr.Schedule, serr.Err)
		})
	}
}
