package explore

import (
	"errors"
	"fmt"
	"testing"

	"livetm/internal/model"
	"livetm/internal/safety"
	"livetm/internal/sim"
	"livetm/internal/stm"
	"livetm/internal/stm/dstm"
	"livetm/internal/stm/fgptm"
	"livetm/internal/stm/norec"
	"livetm/internal/stm/ostm"
	"livetm/internal/stm/tiny"
	"livetm/internal/stm/tl2"
)

// oneShotIncrement is a deterministic scenario: each process attempts
// a single read-increment-commit transaction (no retry) and exits.
func oneShotIncrement(tm stm.TM, p model.Proc) func(*sim.Env) {
	return func(env *sim.Env) {
		v, st := tm.Read(env, 0)
		if st != stm.OK {
			return
		}
		if tm.Write(env, 0, v+1) != stm.OK {
			return
		}
		tm.TryCommit(env)
	}
}

func opacityCheck(schedule []model.Proc, h model.History) error {
	res, err := safety.CheckOpacity(h)
	if err != nil {
		return err
	}
	if !res.Holds {
		return fmt.Errorf("not opaque: %s\n%s", res.Reason, h)
	}
	return nil
}

// TestExhaustiveOpacity model-checks every aborting TM: over ALL
// schedules of two one-shot increments up to 14 steps, every reachable
// history is opaque. Opacity is prefix-closed, so checking maximal
// histories covers every intermediate one.
func TestExhaustiveOpacity(t *testing.T) {
	factories := map[string]stm.Factory{
		"tiny":  func(n, v int) stm.TM { return tiny.New() },
		"tl2":   func(n, v int) stm.TM { return tl2.New() },
		"norec": func(n, v int) stm.TM { return norec.New() },
		"dstm":  func(n, v int) stm.TM { return dstm.New() },
		"ostm":  func(n, v int) stm.TM { return ostm.New() },
		"fgp": func(n, v int) stm.TM {
			tm, err := fgptm.New(n, v)
			if err != nil {
				panic(err)
			}
			return tm
		},
	}
	for name, factory := range factories {
		factory := factory
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			sc := Scenario{NProcs: 2, NVars: 1, Factory: factory, Body: oneShotIncrement}
			stats, err := Run(sc, 14, opacityCheck)
			if err != nil {
				t.Fatal(err)
			}
			if stats.Schedules < 50 {
				t.Errorf("only %d schedules explored; the state space should be larger", stats.Schedules)
			}
			t.Logf("%s: %d schedules, deepest %d", name, stats.Schedules, stats.Deepest)
		})
	}
}

// TestExhaustiveLostUpdate: across all schedules, the two one-shot
// increments never both commit with a lost update — the final counter
// equals the number of commit events.
func TestExhaustiveLostUpdate(t *testing.T) {
	sc := Scenario{
		NProcs:  2,
		NVars:   1,
		Factory: func(n, v int) stm.TM { return tl2.New() },
		Body:    oneShotIncrement,
	}
	_, err := Run(sc, 14, func(schedule []model.Proc, h model.History) error {
		txns, terr := model.Transactions(h)
		if terr != nil {
			return terr
		}
		commits := 0
		final := model.Value(0)
		for _, tx := range txns {
			if tx.Status == model.Committed {
				commits++
				for x, val := range tx.WriteSet() {
					if x == 0 {
						final = val
					}
				}
			}
		}
		// Each committed increment wrote read+1; with both committed
		// the second must have read the first's value.
		if commits == 2 && final != 2 {
			return fmt.Errorf("lost update: 2 commits but final value %d", final)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// brokenTM leaks uncommitted writes: Write applies in place with no
// isolation. The model checker must find a non-opaque schedule.
type brokenTM struct {
	store map[model.TVar]model.Value
}

func (b *brokenTM) Name() string { return "broken" }

func (b *brokenTM) Read(env *sim.Env, x model.TVar) (model.Value, stm.Status) {
	env.Yield()
	return b.store[x], stm.OK
}

func (b *brokenTM) Write(env *sim.Env, x model.TVar, v model.Value) stm.Status {
	env.Yield()
	b.store[x] = v
	return stm.OK
}

func (b *brokenTM) TryCommit(env *sim.Env) stm.Status {
	env.Yield()
	return stm.OK
}

func TestExplorerFindsViolation(t *testing.T) {
	sc := Scenario{
		NProcs:  2,
		NVars:   1,
		Factory: func(n, v int) stm.TM { return &brokenTM{store: map[model.TVar]model.Value{}} },
		Body: func(tm stm.TM, p model.Proc) func(*sim.Env) {
			return func(env *sim.Env) {
				// p1 writes 7 then aborts its own... it cannot abort;
				// instead: p1 writes then never commits within the
				// bound; p2 reads. A dirty read is then visible in
				// some schedule.
				if p == 1 {
					tm.Write(env, 0, 7)
					env.Yield()
					env.Yield()
					return // transaction left live; com(H) aborts it
				}
				tm.Read(env, 0)
				tm.TryCommit(env)
			}
		},
	}
	_, err := Run(sc, 10, opacityCheck)
	var serr *ScheduleError
	if !errors.As(err, &serr) {
		t.Fatalf("expected a ScheduleError, got %v", err)
	}
	if len(serr.Schedule) == 0 {
		t.Error("violating schedule must be reported")
	}
}

// TestExhaustiveCrashAtomicity model-checks OSTM's committed-state
// atomicity under every placement of a p1 crash within every
// interleaving: after any leaf, the two variables p1 writes must be
// updated atomically (both or neither), as observed by the history's
// committed transactions and by a fresh reader.
func TestExhaustiveCrashAtomicity(t *testing.T) {
	sc := Scenario{
		NProcs:  2,
		NVars:   2,
		Factory: func(n, v int) stm.TM { return ostm.New() },
		Body: func(tm stm.TM, p model.Proc) func(*sim.Env) {
			return func(env *sim.Env) {
				if p == 1 {
					if tm.Write(env, 0, 7) != stm.OK {
						return
					}
					if tm.Write(env, 1, 8) != stm.OK {
						return
					}
					tm.TryCommit(env)
					return
				}
				// p2 reads both variables in one transaction.
				v0, st := tm.Read(env, 0)
				if st != stm.OK {
					return
				}
				v1, st := tm.Read(env, 1)
				if st != stm.OK {
					return
				}
				if tm.TryCommit(env) == stm.OK && (v0 == 7) != (v1 == 8) {
					panic("non-atomic observation") // surfaces via the test harness
				}
			}
		},
	}
	stats, err := RunWithCrashes(sc, 12, []model.Proc{1}, opacityCheck)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Schedules < 100 {
		t.Errorf("only %d schedules; crash branching should enlarge the space", stats.Schedules)
	}
	t.Logf("crash-exhaustive: %d schedules, deepest %d", stats.Schedules, stats.Deepest)
}

// TestCrashChoicesValidated rejects out-of-range crashable processes.
func TestCrashChoicesValidated(t *testing.T) {
	sc := Scenario{NProcs: 1, NVars: 1,
		Factory: func(n, v int) stm.TM { return tl2.New() },
		Body:    oneShotIncrement}
	if _, err := RunWithCrashes(sc, 4, []model.Proc{9}, nil); err == nil {
		t.Error("out-of-range crashable process must be rejected")
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(Scenario{}, 5, nil); err == nil {
		t.Error("empty scenario must be rejected")
	}
	sc := Scenario{NProcs: 1, NVars: 1,
		Factory: func(n, v int) stm.TM { return tl2.New() },
		Body:    oneShotIncrement}
	if _, err := Run(sc, 0, nil); err == nil {
		t.Error("non-positive bound must be rejected")
	}
	stats, err := Run(sc, 10, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Schedules != 1 {
		t.Errorf("single process has exactly one schedule, got %d", stats.Schedules)
	}
}

// TestDeterministicReplay: the schedule reported in a violation
// reproduces the same history.
func TestDeterministicReplay(t *testing.T) {
	sc := Scenario{NProcs: 2, NVars: 1,
		Factory: func(n, v int) stm.TM { return dstm.New() },
		Body:    oneShotIncrement}
	var first model.History
	var sched []model.Proc
	_, err := Run(sc, 8, func(schedule []model.Proc, h model.History) error {
		if first == nil && len(h) > 6 {
			first = h.Clone()
			sched = append([]model.Proc(nil), schedule...)
			return errors.New("stop") // capture one leaf and bail
		}
		return nil
	})
	if err == nil || first == nil {
		t.Fatal("expected to capture a leaf")
	}
	// Replay manually.
	rec := stm.NewRecorder(dstm.New())
	s := sim.New(&sim.Fixed{Schedule: sched})
	defer s.Close()
	_ = s.Spawn(1, oneShotIncrement(rec, 1))
	_ = s.Spawn(2, oneShotIncrement(rec, 2))
	s.Run(len(sched))
	h := rec.History()
	if len(h) != len(first) {
		t.Fatalf("replayed history has %d events, want %d", len(h), len(first))
	}
	for i := range h {
		if h[i] != first[i] {
			t.Fatalf("replay diverged at event %d", i)
		}
	}
}
