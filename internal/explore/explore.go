// Package explore is a stateless model checker for TM scenarios: it
// systematically enumerates *every* schedule of a deterministic
// scenario up to a step bound and checks a predicate (typically
// opacity) on each reachable history.
//
// Where the randomized conformance tests sample interleavings, explore
// covers them exhaustively — the strongest safety evidence this
// repository produces short of proof. The technique is stateless:
// process state cannot be checkpointed, so each explored schedule
// prefix is re-executed from scratch with a fixed schedule; the
// scheduler's determinism makes replay exact.
package explore

import (
	"fmt"

	"livetm/internal/model"
	"livetm/internal/sim"
	"livetm/internal/stm"
)

// Scenario describes a deterministic multi-process workload over a
// fresh TM instance. Bodies must be deterministic functions of the
// schedule (no randomness, no shared mutable state outside the TM).
type Scenario struct {
	// NProcs is the number of processes, identified 1..NProcs.
	NProcs int
	// NVars is the t-variable count handed to the factory.
	NVars int
	// Factory creates the TM under test.
	Factory stm.Factory
	// Body returns the process body for p, given the recorder-wrapped
	// TM for this run.
	Body func(tm stm.TM, p model.Proc) func(*sim.Env)
}

// Stats reports what an exploration covered.
type Stats struct {
	// Schedules is the number of maximal schedules explored (leaves).
	Schedules int
	// Histories is the number of distinct histories checked (equal to
	// the number of check invocations that ran).
	Histories int
	// Deepest is the longest schedule reached.
	Deepest int
}

// CheckFunc inspects the history of one explored schedule. Returning
// an error aborts the exploration and surfaces the schedule.
type CheckFunc func(schedule []model.Proc, h model.History) error

// ScheduleError wraps a check failure with the schedule that caused
// it, so the exact interleaving can be replayed.
type ScheduleError struct {
	Schedule []model.Proc
	Err      error
}

func (e *ScheduleError) Error() string {
	return fmt.Sprintf("schedule %v: %v", e.Schedule, e.Err)
}

func (e *ScheduleError) Unwrap() error { return e.Err }

// Run explores all schedules of up to maxSteps scheduler steps,
// invoking check at every leaf (schedules that end early because all
// processes finished are also leaves). It returns coverage statistics
// and the first check failure, if any.
func Run(sc Scenario, maxSteps int, check CheckFunc) (Stats, error) {
	return RunWithCrashes(sc, maxSteps, nil, check)
}

// RunWithCrashes additionally branches on crash injection: at every
// frontier, each process in crashable may crash (at most one crash per
// process per schedule). This covers all placements of crashes within
// all interleavings — the exhaustive version of the crash-point sweep.
// Crash choices are encoded in the reported schedule as the negated
// process id.
func RunWithCrashes(sc Scenario, maxSteps int, crashable []model.Proc, check CheckFunc) (Stats, error) {
	if sc.NProcs <= 0 || sc.Factory == nil || sc.Body == nil {
		return Stats{}, fmt.Errorf("explore: scenario needs processes, a factory, and bodies")
	}
	if maxSteps <= 0 {
		return Stats{}, fmt.Errorf("explore: maxSteps must be positive")
	}
	e := &explorer{sc: sc, maxSteps: maxSteps, check: check}
	for _, p := range crashable {
		if p < 1 || int(p) > sc.NProcs {
			return Stats{}, fmt.Errorf("explore: crashable process %d out of range", p)
		}
		e.crashable = append(e.crashable, p)
	}
	err := e.dfs(nil)
	return e.stats, err
}

type explorer struct {
	sc        Scenario
	maxSteps  int
	check     CheckFunc
	crashable []model.Proc
	stats     Stats
}

// A schedule is a sequence of choices: p > 0 steps process p; p < 0
// crashes process -p at that point.
func steps(schedule []model.Proc) int {
	n := 0
	for _, c := range schedule {
		if c > 0 {
			n++
		}
	}
	return n
}

// dfs extends the schedule prefix by every runnable step choice and
// every not-yet-used crash choice. Each call replays the scenario from
// scratch along the prefix — stateless model checking — then inspects
// the frontier.
func (e *explorer) dfs(prefix []model.Proc) error {
	h, runnable, err := e.replay(prefix)
	if err != nil {
		return err
	}
	if n := steps(prefix); n > e.stats.Deepest {
		e.stats.Deepest = n
	}
	if steps(prefix) >= e.maxSteps || len(runnable) == 0 {
		// A leaf: bound reached or every process finished/crashed.
		e.stats.Schedules++
		e.stats.Histories++
		if e.check != nil {
			if cerr := e.check(prefix, h); cerr != nil {
				return &ScheduleError{Schedule: append([]model.Proc(nil), prefix...), Err: cerr}
			}
		}
		return nil
	}
	for _, p := range runnable {
		if err := e.dfs(append(prefix, p)); err != nil {
			return err
		}
	}
	for _, p := range e.crashable {
		if crashed(prefix, p) || !contains(runnable, p) {
			continue
		}
		if err := e.dfs(append(prefix, -p)); err != nil {
			return err
		}
	}
	return nil
}

func crashed(schedule []model.Proc, p model.Proc) bool {
	for _, c := range schedule {
		if c == -p {
			return true
		}
	}
	return false
}

func contains(ps []model.Proc, p model.Proc) bool {
	for _, q := range ps {
		if q == p {
			return true
		}
	}
	return false
}

// replay executes the scenario along the schedule (steps and crash
// injections) and returns the recorded history plus the runnable
// frontier.
func (e *explorer) replay(schedule []model.Proc) (model.History, []model.Proc, error) {
	rec := stm.NewRecorder(e.sc.Factory(e.sc.NProcs, e.sc.NVars))
	stepsOnly := make([]model.Proc, 0, len(schedule))
	for _, c := range schedule {
		if c > 0 {
			stepsOnly = append(stepsOnly, c)
		}
	}
	s := sim.New(&sim.Fixed{Schedule: stepsOnly})
	defer s.Close()
	for i := 1; i <= e.sc.NProcs; i++ {
		p := model.Proc(i)
		if err := s.Spawn(p, e.sc.Body(rec, p)); err != nil {
			return nil, nil, fmt.Errorf("explore: %w", err)
		}
	}
	for _, c := range schedule {
		if c < 0 {
			s.Crash(-c)
			continue
		}
		if !s.Step() {
			// Everything finished before consuming the prefix; the
			// frontier is empty and dfs treats this as a leaf.
			return rec.History(), nil, nil
		}
	}
	return rec.History(), s.Runnable(), nil
}
