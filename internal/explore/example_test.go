package explore_test

import (
	"fmt"

	"livetm/internal/explore"
	"livetm/internal/model"
	"livetm/internal/safety"
	"livetm/internal/sim"
	"livetm/internal/stm"
	"livetm/internal/stm/tl2"
)

// Exhaustively verify opacity of a TL2 instance over every schedule of
// two one-shot increments.
func ExampleRun() {
	sc := explore.Scenario{
		NProcs:  2,
		NVars:   1,
		Factory: func(n, v int) stm.TM { return tl2.New() },
		Body: func(tm stm.TM, p model.Proc) func(*sim.Env) {
			return func(env *sim.Env) {
				v, st := tm.Read(env, 0)
				if st != stm.OK {
					return
				}
				if tm.Write(env, 0, v+1) != stm.OK {
					return
				}
				tm.TryCommit(env)
			}
		},
	}
	stats, err := explore.Run(sc, 14, func(schedule []model.Proc, h model.History) error {
		res, cerr := safety.CheckOpacity(h)
		if cerr != nil {
			return cerr
		}
		if !res.Holds {
			return fmt.Errorf("not opaque: %s", res.Reason)
		}
		return nil
	})
	fmt.Println(err == nil, stats.Schedules > 1000)
	// Output:
	// true true
}
