package server

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"livetm/internal/engine"
	"livetm/internal/monitor"
	"livetm/internal/telemetry"
)

// Backend is what the server serves: the submission surface plus the
// session lifecycle. *engine.Session satisfies it directly; a router
// fanning out over several sessions would too.
type Backend interface {
	engine.Submitter
	// Drain blocks until every accepted submission has completed.
	Drain(ctx context.Context) error
	// Stats snapshots the session counters.
	Stats() engine.SessionStats
	// Close tears the session down and returns the final monitor
	// report (nil when the session is not live).
	Close() (*monitor.Report, error)
}

// Config parameterizes a Server.
type Config struct {
	// MaxInflight is the global admission cap: the total number of
	// submissions (blocking, async, and interactive) the server holds
	// in flight at once, shared fairly among active clients. 0 leaves
	// admission unbounded (the engine's own MaxQueue still applies).
	MaxInflight int
	// RetryAfter is the backoff hint attached to overload refusals
	// (Retry-After header + retry_after_ms body field). 0 defaults to
	// 50ms.
	RetryAfter time.Duration
	// ClientIdleAfter is the grace period after which an idle client's
	// admission account (and its per-client telemetry series) is
	// evicted, bounding server state under ephemeral client names. 0
	// defaults to 30s; negative disables eviction.
	ClientIdleAfter time.Duration
	// Codec frames the wire bodies; nil defaults to JSONCodec.
	Codec Codec
	// Registry, when set, receives the per-client admission
	// instruments and gets its /metrics, /snapshot and /debug/pprof/
	// endpoints mounted on the server's own handler.
	Registry *telemetry.Registry
	// Info describes the serving session to clients (GET /v1/info).
	// Info.Vars also bounds the variable index accepted in programs
	// and interactive ops.
	Info InfoResponse
}

// pendingSub is one async submission awaiting its /v1/wait.
type pendingSub struct {
	done   chan struct{}
	result error
	reads  []int64
}

// Server is the wire front of one Backend. Create with New, expose
// via Handler, and end with Drain (directly on SIGTERM, or remotely
// through POST /v1/drain).
type Server struct {
	cfg     Config
	backend Backend
	adm     *admission
	mux     *http.ServeMux

	idSeq    atomic.Uint64
	draining atomic.Bool

	mu    sync.Mutex
	itxs  map[string]*itx
	waits map[string]*pendingSub

	drainOnce sync.Once
	drainErr  error
	drainRes  DrainResponse
	done      chan struct{}
}

// New builds a Server over backend.
func New(backend Backend, cfg Config) *Server {
	if cfg.Codec == nil {
		cfg.Codec = JSONCodec{}
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = 50 * time.Millisecond
	}
	idle := cfg.ClientIdleAfter
	if idle == 0 {
		idle = 30 * time.Second
	}
	s := &Server{
		cfg:     cfg,
		backend: backend,
		adm:     newAdmission(cfg.MaxInflight, idle, cfg.Registry),
		mux:     http.NewServeMux(),
		itxs:    make(map[string]*itx),
		waits:   make(map[string]*pendingSub),
		done:    make(chan struct{}),
	}
	s.mux.HandleFunc("POST /v1/exec", s.handleExec)
	s.mux.HandleFunc("POST /v1/submit", s.handleSubmit)
	s.mux.HandleFunc("POST /v1/wait", s.handleWait)
	s.mux.HandleFunc("POST /v1/tx/begin", s.handleTxBegin)
	s.mux.HandleFunc("POST /v1/tx/op", s.handleTxOp)
	s.mux.HandleFunc("POST /v1/tx/finish", s.handleTxFinish)
	s.mux.HandleFunc("GET /v1/info", s.handleInfo)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("POST /v1/drain", s.handleDrain)
	if cfg.Registry != nil {
		th := telemetry.Handler(cfg.Registry)
		s.mux.Handle("/metrics", th)
		s.mux.Handle("/snapshot", th)
		s.mux.Handle("/debug/pprof/", th)
	}
	return s
}

// Handler is the server's HTTP surface (wire API v1 plus, with a
// registry, the telemetry endpoints).
func (s *Server) Handler() http.Handler { return s.mux }

// Done is closed once a drain — local or remote — has fully
// completed; serve loops use it to exit after a POST /v1/drain.
func (s *Server) Done() <-chan struct{} { return s.done }

// Drain gracefully ends the service: refuse new work, abandon parked
// interactive transactions (their clients are gone or going), wait
// for every accepted submission to complete, close the session, and
// retain the final monitor report. Idempotent; every call returns
// the same outcome.
func (s *Server) Drain(ctx context.Context) (DrainResponse, error) {
	s.drainOnce.Do(func() {
		s.draining.Store(true)
		s.mu.Lock()
		open := make([]*itx, 0, len(s.itxs))
		for _, t := range s.itxs {
			open = append(open, t)
		}
		s.mu.Unlock()
		for _, t := range open {
			t.abandonNow()
		}
		if err := s.backend.Drain(ctx); err != nil {
			s.drainErr = fmt.Errorf("drain: %w", err)
		}
		stats := s.backend.Stats()
		report, err := s.backend.Close()
		if err != nil && s.drainErr == nil {
			s.drainErr = err
		}
		s.drainRes = DrainResponse{Report: report, Stats: stats}
		if err != nil {
			s.drainRes.Code = CodeOf(err)
			s.drainRes.Error = err.Error()
		}
		close(s.done)
	})
	return s.drainRes, s.drainErr
}

// clientOf extracts the client identity fairness accounts against.
func clientOf(r *http.Request) string {
	if c := r.Header.Get(ClientHeader); c != "" {
		return c
	}
	if host, _, err := net.SplitHostPort(r.RemoteAddr); err == nil {
		return host
	}
	return r.RemoteAddr
}

// writeErr emits the uniform error frame for err at its mapped
// status, attaching the Retry-After hint to overload refusals.
func (s *Server) writeErr(w http.ResponseWriter, err error) {
	code := CodeOf(err)
	s.writeCode(w, code, err.Error())
}

func (s *Server) writeCode(w http.ResponseWriter, code, msg string) {
	resp := ErrorResponse{Code: code, Error: msg}
	if code == CodeOverloaded {
		resp.RetryAfterMS = s.cfg.RetryAfter.Milliseconds()
		secs := int64(s.cfg.RetryAfter.Round(time.Second) / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	}
	w.Header().Set("Content-Type", s.cfg.Codec.ContentType())
	w.WriteHeader(StatusOf(code))
	_ = s.cfg.Codec.Encode(w, resp)
}

func (s *Server) writeOK(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", s.cfg.Codec.ContentType())
	_ = s.cfg.Codec.Encode(w, v)
}

func (s *Server) decode(w http.ResponseWriter, r *http.Request, v any) bool {
	if err := s.cfg.Codec.Decode(r.Body, v); err != nil {
		s.writeCode(w, CodeBadRequest, "decode: "+err.Error())
		return false
	}
	return true
}

// checkProgram validates a program against the session shape.
func (s *Server) checkProgram(worker int, ops []Op) error {
	if worker < engine.AnyWorker {
		return fmt.Errorf("worker %d out of range", worker)
	}
	if len(ops) == 0 {
		return errors.New("empty program")
	}
	for i, op := range ops {
		switch op.Kind {
		case OpRead, OpWrite, OpIncr:
		default:
			return fmt.Errorf("op %d: unknown kind %q", i, op.Kind)
		}
		if op.Var < 0 || (s.cfg.Info.Vars > 0 && op.Var >= s.cfg.Info.Vars) {
			return fmt.Errorf("op %d: var %d out of range [0,%d)", i, op.Var, s.cfg.Info.Vars)
		}
	}
	return nil
}

// ProgramBody compiles a program into a transaction body for any
// engine.Submitter (the wire handlers and internal/loadgen's
// in-process target share it). reads is
// reset at each attempt entry, so the values handed back always come
// from the attempt that committed.
func ProgramBody(ops []Op, reads *[]int64) engine.Body {
	return func(tx engine.Tx) error {
		*reads = (*reads)[:0]
		for _, op := range ops {
			switch op.Kind {
			case OpRead:
				v, err := tx.Read(op.Var)
				if err != nil {
					return err
				}
				*reads = append(*reads, v)
			case OpWrite:
				if err := tx.Write(op.Var, op.Val); err != nil {
					return err
				}
			case OpIncr:
				v, err := tx.Read(op.Var)
				if err != nil {
					return err
				}
				if err := tx.Write(op.Var, v+op.Val); err != nil {
					return err
				}
				*reads = append(*reads, v)
			}
		}
		return nil
	}
}

// execResult maps a submission's terminal error onto the wire shape.
func execResult(err error, reads []int64) (ExecResponse, error) {
	switch {
	case err == nil:
		return ExecResponse{Committed: true, Reads: reads}, nil
	case errors.Is(err, engine.ErrNoCommit):
		return ExecResponse{NoCommit: true}, nil
	default:
		return ExecResponse{}, err
	}
}

func (s *Server) handleExec(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		s.writeErr(w, engine.ErrClosed)
		return
	}
	var req ExecRequest
	if !s.decode(w, r, &req) {
		return
	}
	if err := s.checkProgram(req.Worker, req.Ops); err != nil {
		s.writeCode(w, CodeBadRequest, err.Error())
		return
	}
	client := clientOf(r)
	if err := s.adm.acquire(client); err != nil {
		s.writeErr(w, err)
		return
	}
	defer s.adm.release(client)
	var reads []int64
	err := s.backend.ExecOn(r.Context(), req.Worker, ProgramBody(req.Ops, &reads))
	resp, err := execResult(err, reads)
	if err != nil {
		s.writeErr(w, err)
		return
	}
	s.writeOK(w, resp)
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		s.writeErr(w, engine.ErrClosed)
		return
	}
	var req ExecRequest
	if !s.decode(w, r, &req) {
		return
	}
	if err := s.checkProgram(req.Worker, req.Ops); err != nil {
		s.writeCode(w, CodeBadRequest, err.Error())
		return
	}
	client := clientOf(r)
	if err := s.adm.acquire(client); err != nil {
		s.writeErr(w, err)
		return
	}
	id := "s" + strconv.FormatUint(s.idSeq.Add(1), 10)
	p := &pendingSub{done: make(chan struct{})}
	body := ProgramBody(req.Ops, &p.reads)
	err := s.backend.SubmitOn(req.Worker, body, func(res error) {
		p.result = res
		close(p.done)
		s.adm.release(client)
	})
	if err != nil {
		s.adm.release(client)
		s.writeErr(w, err)
		return
	}
	s.mu.Lock()
	s.waits[id] = p
	s.mu.Unlock()
	s.writeOK(w, SubmitResponse{ID: id})
}

func (s *Server) handleWait(w http.ResponseWriter, r *http.Request) {
	var req WaitRequest
	if !s.decode(w, r, &req) {
		return
	}
	s.mu.Lock()
	p := s.waits[req.ID]
	s.mu.Unlock()
	if p == nil {
		s.writeCode(w, CodeNotFound, "no pending submission "+req.ID)
		return
	}
	select {
	case <-p.done:
	case <-r.Context().Done():
		s.writeCode(w, CodeTimeout, "wait: "+r.Context().Err().Error())
		return
	}
	s.mu.Lock()
	delete(s.waits, req.ID)
	s.mu.Unlock()
	resp, err := execResult(p.result, p.reads)
	if err != nil {
		s.writeErr(w, err)
		return
	}
	s.writeOK(w, resp)
}

func (s *Server) handleTxBegin(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		s.writeErr(w, engine.ErrClosed)
		return
	}
	var req BeginRequest
	if !s.decode(w, r, &req) {
		return
	}
	if req.Worker < engine.AnyWorker {
		s.writeCode(w, CodeBadRequest, fmt.Sprintf("worker %d out of range", req.Worker))
		return
	}
	client := clientOf(r)
	if err := s.adm.acquire(client); err != nil {
		s.writeErr(w, err)
		return
	}
	id := "t" + strconv.FormatUint(s.idSeq.Add(1), 10)
	t := newItx(id, client, req.Worker)
	s.mu.Lock()
	s.itxs[id] = t
	s.mu.Unlock()
	err := s.backend.SubmitOn(req.Worker, t.body, func(res error) {
		t.finished(res)
		s.mu.Lock()
		delete(s.itxs, id)
		s.mu.Unlock()
		s.adm.release(client)
	})
	if err != nil {
		s.mu.Lock()
		delete(s.itxs, id)
		s.mu.Unlock()
		s.adm.release(client)
		s.writeErr(w, err)
		return
	}
	s.writeOK(w, BeginResponse{Txn: id})
}

// lookupItx finds an open interactive transaction.
func (s *Server) lookupItx(id string) *itx {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.itxs[id]
}

func (s *Server) handleTxOp(w http.ResponseWriter, r *http.Request) {
	var req TxOpRequest
	if !s.decode(w, r, &req) {
		return
	}
	t := s.lookupItx(req.Txn)
	if t == nil {
		s.writeCode(w, CodeNotFound, "no open transaction "+req.Txn)
		return
	}
	var kind int
	switch req.Op.Kind {
	case OpRead:
		kind = icRead
	case OpWrite:
		kind = icWrite
	default:
		s.writeCode(w, CodeBadRequest, "interactive op must be read or write, got "+req.Op.Kind)
		return
	}
	if req.Op.Var < 0 || (s.cfg.Info.Vars > 0 && req.Op.Var >= s.cfg.Info.Vars) {
		s.writeCode(w, CodeBadRequest,
			fmt.Sprintf("var %d out of range [0,%d)", req.Op.Var, s.cfg.Info.Vars))
		return
	}
	t.opMu.Lock()
	defer t.opMu.Unlock()
	c := &icmd{kind: kind, varIx: req.Op.Var, val: req.Op.Val, reply: make(chan ireply, 1)}
	select {
	case t.cmds <- c:
	case <-t.complete:
		s.writeTerminal(w, t.result)
		return
	case <-r.Context().Done():
		s.writeCode(w, CodeTimeout, "tx op: "+r.Context().Err().Error())
		return
	}
	select {
	case rep := <-c.reply:
		s.writeOK(w, TxOpResponse{Val: rep.val, Aborted: rep.err != nil})
	case <-t.complete:
		s.writeTerminal(w, t.result)
	}
}

// writeTerminal reports an op against a transaction that turned out
// to be already over (abandoned under it, or the session closed).
func (s *Server) writeTerminal(w http.ResponseWriter, res error) {
	if res == nil {
		// A committed transaction has no business receiving further
		// ops; the id simply no longer exists.
		s.writeCode(w, CodeNotFound, "transaction already finished")
		return
	}
	s.writeErr(w, res)
}

func (s *Server) handleTxFinish(w http.ResponseWriter, r *http.Request) {
	var req TxFinishRequest
	if !s.decode(w, r, &req) {
		return
	}
	t := s.lookupItx(req.Txn)
	if t == nil {
		s.writeCode(w, CodeNotFound, "no open transaction "+req.Txn)
		return
	}
	switch req.Mode {
	case FinishAbandon:
		t.abandonNow()
		select {
		case <-t.complete:
		case <-r.Context().Done():
			s.writeCode(w, CodeTimeout, "abandon: "+r.Context().Err().Error())
			return
		}
		s.writeOK(w, TxFinishResponse{Code: CodeOf(t.result)})
		return
	case FinishCommit, FinishNoCommit:
	default:
		s.writeCode(w, CodeBadRequest, "unknown finish mode "+req.Mode)
		return
	}
	kind := icFinish
	if req.Mode == FinishNoCommit {
		kind = icNoCommit
	}
	t.opMu.Lock()
	defer t.opMu.Unlock()
	t.drainEntered()
	c := &icmd{kind: kind, reply: make(chan ireply, 1)}
	select {
	case t.cmds <- c:
	case <-t.complete:
		s.writeFinish(w, t.result)
		return
	case <-r.Context().Done():
		s.writeCode(w, CodeTimeout, "finish: "+r.Context().Err().Error())
		return
	}
	var handed ireply
	select {
	case handed = <-c.reply:
	case <-t.complete:
		s.writeFinish(w, t.result)
		return
	}
	// The body returned; the engine is now committing (or, for
	// nocommit, completing the round). Either the submission reaches
	// its terminal result, or the retry loop re-enters the body — a
	// pulse on entered with a higher attempt means the commit aborted
	// and the transaction is open again.
	for {
		select {
		case <-t.complete:
			s.writeFinish(w, t.result)
			return
		case <-t.entered:
			if t.attempt.Load() > handed.attempt {
				s.writeOK(w, TxFinishResponse{Retrying: true})
				return
			}
		case <-r.Context().Done():
			s.writeCode(w, CodeTimeout, "finish: "+r.Context().Err().Error())
			return
		}
	}
}

// writeFinish maps a terminal submission result onto the finish
// frame.
func (s *Server) writeFinish(w http.ResponseWriter, res error) {
	switch {
	case res == nil:
		s.writeOK(w, TxFinishResponse{Committed: true})
	case errors.Is(res, engine.ErrNoCommit):
		s.writeOK(w, TxFinishResponse{Code: CodeNoCommit})
	case errors.Is(res, errAbandoned):
		s.writeOK(w, TxFinishResponse{Code: CodeAbandoned})
	default:
		s.writeErr(w, res)
	}
}

func (s *Server) handleInfo(w http.ResponseWriter, _ *http.Request) {
	s.writeOK(w, s.cfg.Info)
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	s.writeOK(w, s.backend.Stats())
}

func (s *Server) handleDrain(w http.ResponseWriter, r *http.Request) {
	res, err := s.Drain(r.Context())
	if err != nil && res.Code == "" {
		res.Code = CodeOf(err)
		res.Error = err.Error()
	}
	s.writeOK(w, res)
}
