package server

import (
	"errors"
	"net/http"

	"livetm/internal/engine"
	"livetm/internal/monitor"
)

// The wire vocabulary: every frame that crosses the protocol
// boundary, shared verbatim by internal/client. Field names are the
// JSON wire format; the Codec decides only how frames are encoded,
// never what they say.

// ClientHeader names the request header carrying the client identity
// the admission controller accounts fairness against. Absent, the
// peer's address identifies the client.
const ClientHeader = "X-Livetm-Client"

// Op kinds of a transaction program.
const (
	// OpRead reads Var and appends the value to the result's Reads.
	OpRead = "read"
	// OpWrite writes the literal Val into Var.
	OpWrite = "write"
	// OpIncr reads Var, writes the value plus Val back, and appends
	// the value read to Reads — the canonical increment transaction.
	OpIncr = "incr"
)

// Op is one operation of a declarative transaction program. Programs
// are how one-shot transactions cross the wire: the server replays
// the ops inside a real transaction body on every attempt, so a
// program is idempotent across retries by construction.
type Op struct {
	Kind string `json:"kind"`
	Var  int    `json:"var"`
	Val  int64  `json:"val,omitempty"`
}

// ExecRequest submits one transaction program. Worker pins the
// submission to a worker lane (engine.AnyWorker, the zero value's
// explicit counterpart -1, submits to whichever worker frees up
// first).
type ExecRequest struct {
	Worker int  `json:"worker"`
	Ops    []Op `json:"ops"`
}

// ExecResponse is a completed program submission. Committed is false
// for a declined (nocommit) program; Reads holds the values read by
// OpRead/OpIncr ops, in op order, from the final attempt.
type ExecResponse struct {
	Committed bool    `json:"committed"`
	NoCommit  bool    `json:"nocommit,omitempty"`
	Reads     []int64 `json:"reads,omitempty"`
}

// SubmitResponse acknowledges an asynchronously accepted program.
type SubmitResponse struct {
	ID string `json:"id"`
}

// WaitRequest blocks for an async submission's result.
type WaitRequest struct {
	ID string `json:"id"`
}

// BeginRequest opens an interactive transaction pinned to a worker
// lane. The transaction stays open across requests until finished or
// abandoned; its ops arrive one TxOpRequest at a time.
type BeginRequest struct {
	Worker int `json:"worker"`
}

// BeginResponse hands back the interactive transaction's id.
type BeginResponse struct {
	Txn string `json:"txn"`
}

// TxOpRequest is one read or write inside an open interactive
// transaction (OpIncr is not interactive: issue OpRead then OpWrite).
type TxOpRequest struct {
	Txn string `json:"txn"`
	Op  Op     `json:"op"`
}

// TxOpResponse reports one interactive op. Aborted means the current
// attempt aborted on this op: the retry loop re-enters the body and
// the transaction handle stays open, with the next op starting a
// fresh attempt — the wire form of the adversary gates' "on abort,
// return to Step 1".
type TxOpResponse struct {
	Val     int64 `json:"val"`
	Aborted bool  `json:"aborted,omitempty"`
}

// Finish modes.
const (
	// FinishCommit hands the open attempt to the commit path.
	FinishCommit = "commit"
	// FinishNoCommit declines the transaction without attempting to
	// commit (the parasitic step).
	FinishNoCommit = "nocommit"
	// FinishAbandon tears the transaction down, releasing whatever
	// the open attempt holds.
	FinishAbandon = "abandon"
)

// TxFinishRequest ends (or tries to end) an interactive transaction.
type TxFinishRequest struct {
	Txn  string `json:"txn"`
	Mode string `json:"mode"`
}

// TxFinishResponse reports a finish. Retrying means the commit
// attempt aborted and the retry loop re-entered the body: the
// transaction is still open and the client may keep issuing ops (the
// gate semantics of a failed Finish). Otherwise the transaction is
// over and Code carries its terminal result ("" commit, CodeNoCommit,
// CodeAbandoned, or an error code).
type TxFinishResponse struct {
	Committed bool   `json:"committed"`
	Retrying  bool   `json:"retrying,omitempty"`
	Code      string `json:"code,omitempty"`
}

// InfoResponse describes the serving session.
type InfoResponse struct {
	Engine  string `json:"engine"`
	Workers int    `json:"workers"`
	Vars    int    `json:"vars"`
	Shards  int    `json:"shards,omitempty"`
	Live    bool   `json:"live"`
}

// DrainResponse is the graceful drain's result: the final monitor
// report (nil when the session was not live), the closing stats
// snapshot, and the session's terminal condition as a wire code.
type DrainResponse struct {
	Report *monitor.Report     `json:"report,omitempty"`
	Stats  engine.SessionStats `json:"stats"`
	Code   string              `json:"code,omitempty"`
	Error  string              `json:"error,omitempty"`
}

// ErrorResponse is the body of every non-2xx response: a stable code
// (the engine sentinel vocabulary), a human message, and — on
// CodeOverloaded — the retry-after hint also carried by the
// Retry-After header.
type ErrorResponse struct {
	Code         string `json:"code"`
	Error        string `json:"error"`
	RetryAfterMS int64  `json:"retry_after_ms,omitempty"`
}

// Wire error codes. The engine's submission sentinels are stable wire
// vocabulary: CodeOf maps an engine error to its code, StatusOf picks
// the HTTP status, and SentinelOf maps a code back to the sentinel on
// the client side, so errors.Is works identically on both ends of the
// connection.
const (
	CodeOverloaded = "overloaded"
	CodeClosed     = "closed"
	CodeStopped    = "stopped"
	CodeStepBudget = "step-budget"
	CodeBusy       = "busy"
	CodeNoCommit   = "nocommit"
	CodeAbandoned  = "abandoned"
	CodeViolation  = "live-violation"
	CodeBadRequest = "bad-request"
	CodeNotFound   = "not-found"
	CodeTimeout    = "timeout"
	CodeInternal   = "internal"
)

// CodeOf maps an error to its wire code. Unrecognized errors are
// CodeInternal; their message still crosses the wire.
func CodeOf(err error) string {
	switch {
	case err == nil:
		return ""
	case errors.Is(err, engine.ErrOverloaded):
		return CodeOverloaded
	case errors.Is(err, engine.ErrClosed):
		return CodeClosed
	case errors.Is(err, engine.ErrStopped):
		return CodeStopped
	case errors.Is(err, engine.ErrStepBudget):
		return CodeStepBudget
	case errors.Is(err, engine.ErrBusy):
		return CodeBusy
	case errors.Is(err, engine.ErrLiveViolation):
		return CodeViolation
	case errors.Is(err, engine.ErrNoCommit):
		return CodeNoCommit
	case errors.Is(err, errAbandoned):
		return CodeAbandoned
	default:
		return CodeInternal
	}
}

// StatusOf maps a wire code to its HTTP status. Overload is 429 (back
// off and retry), lifecycle refusals are 503 (the service is
// draining, stopped, or out of budget), ErrBusy is a 409 conflict.
func StatusOf(code string) int {
	switch code {
	case CodeOverloaded:
		return http.StatusTooManyRequests
	case CodeClosed, CodeStopped, CodeStepBudget, CodeViolation:
		return http.StatusServiceUnavailable
	case CodeBusy:
		return http.StatusConflict
	case CodeBadRequest:
		return http.StatusBadRequest
	case CodeNotFound:
		return http.StatusNotFound
	case CodeTimeout:
		return http.StatusGatewayTimeout
	default:
		return http.StatusInternalServerError
	}
}

// SentinelOf maps a wire code back to the engine sentinel it encodes,
// or nil for codes with no engine counterpart (bad requests,
// timeouts, internal errors). The client wraps the sentinel so
// errors.Is(err, engine.ErrOverloaded) et al. hold across the wire.
func SentinelOf(code string) error {
	switch code {
	case CodeOverloaded:
		return engine.ErrOverloaded
	case CodeClosed:
		return engine.ErrClosed
	case CodeStopped:
		return engine.ErrStopped
	case CodeStepBudget:
		return engine.ErrStepBudget
	case CodeBusy:
		return engine.ErrBusy
	case CodeViolation:
		return engine.ErrLiveViolation
	case CodeNoCommit:
		return engine.ErrNoCommit
	default:
		return nil
	}
}
