// Package server puts a TM session on the wire: a transport-agnostic
// submission service over an engine.Submitter, serving multiple
// network clients with admission control, per-client fairness, and a
// graceful drain that finishes every accepted transaction and returns
// the resident monitor's final report.
//
// # Layering
//
// The server accepts submissions through the engine.Submitter
// interface plus the session lifecycle (Backend), so anything that
// executes transactions — a *engine.Session directly, or a router
// fanning out over several — can sit behind the same wire API. The
// wire itself is HTTP with a pluggable Codec for the frame bodies
// (JSON today; the Codec boundary is where a compact binary framing
// slots in later without touching handlers or clients).
//
// # Wire API (v1)
//
//	POST /v1/exec      one-shot transaction program, blocking: the
//	                   response carries the commit verdict and the
//	                   values read (Session.Exec over the wire)
//	POST /v1/submit    the same program asynchronously: an id comes
//	                   back immediately (Session.Submit over the wire)
//	POST /v1/wait      block for an async submission's result by id
//	POST /v1/tx/begin  open an interactive transaction pinned to a
//	                   worker lane; the transaction stays open across
//	                   requests (the adversary strategies' gates)
//	POST /v1/tx/op     one read or write inside the open transaction
//	POST /v1/tx/finish commit, decline (nocommit), or abandon it
//	GET  /v1/info      engine name, worker/variable counts, liveness
//	GET  /v1/stats     engine.SessionStats snapshot
//	POST /v1/drain     graceful drain: stop admitting, finish every
//	                   accepted submission, close the session, and
//	                   return the final monitor report
//
// When a telemetry registry is configured the same listener also
// serves /metrics, /snapshot and /debug/pprof/ (telemetry.Handler),
// with per-client admission gauges (inflight, rejected, retry-after
// issued) registered alongside the session's own instruments.
//
// # Admission control and fairness
//
// Every submission — blocking, async, or interactive — occupies one
// admission slot from acceptance to completion. Config.MaxInflight
// caps the slots globally, and each client is limited to its fair
// share (MaxInflight divided by the number of currently-active
// clients), so a flooding client is refused while a light one is
// still admitted. Refusals are engine.ErrOverloaded on the wire:
// HTTP 429 with a Retry-After hint. The engine-level
// SessionConfig.MaxQueue cap surfaces through the same path.
//
// # Interactive transactions and cuts
//
// An interactive transaction parks a worker inside its transaction
// body between ops, holding its shard's quiescent-cut lock the whole
// time, so a live session serving interactive clients should disable
// quiescent cuts (SessionConfig.QuiesceEvery = -1); the monitor's
// liveness accounting and approximate opacity fallback carry the
// stream instead. This is exactly the trade the network adversary
// driver (internal/adversary.RunNetwork) makes: starvation is
// measured at the protocol boundary, where a production user would
// feel it.
package server
