package server

import (
	"bytes"
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"livetm/internal/engine"
	"livetm/internal/telemetry"
)

// openBackend opens a plain native session for wire tests.
func openBackend(t *testing.T, cfg engine.SessionConfig) *engine.Session {
	t.Helper()
	if cfg.Engine == "" {
		cfg.Engine = "native-tl2"
	}
	if cfg.Workers == 0 {
		cfg.Workers = 2
	}
	if cfg.Vars == 0 {
		cfg.Vars = 4
	}
	s, err := engine.Open(cfg)
	if err != nil {
		t.Fatalf("open session: %v", err)
	}
	return s
}

// testServer wires a Server over a fresh session behind httptest.
func testServer(t *testing.T, scfg Config) (*Server, *httptest.Server) {
	t.Helper()
	sess := openBackend(t, engine.SessionConfig{})
	if scfg.Info == (InfoResponse{}) {
		scfg.Info = InfoResponse{Engine: sess.Name(), Workers: 2, Vars: 4}
	}
	srv := New(sess, scfg)
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		hs.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_, _ = srv.Drain(ctx)
	})
	return srv, hs
}

// post sends one wire frame and decodes the response body into out,
// returning the HTTP status.
func post(t *testing.T, url string, in, out any) int {
	t.Helper()
	return postAs(t, url, "", in, out)
}

func postAs(t *testing.T, url, client string, in, out any) int {
	t.Helper()
	var buf bytes.Buffer
	if err := (JSONCodec{}).Encode(&buf, in); err != nil {
		t.Fatalf("encode: %v", err)
	}
	req, err := http.NewRequest(http.MethodPost, url, &buf)
	if err != nil {
		t.Fatalf("request: %v", err)
	}
	req.Header.Set("Content-Type", "application/json")
	if client != "" {
		req.Header.Set(ClientHeader, client)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("post %s: %v", url, err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := (JSONCodec{}).Decode(resp.Body, out); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

func TestExecProgram(t *testing.T) {
	_, hs := testServer(t, Config{})
	var resp ExecResponse
	status := post(t, hs.URL+"/v1/exec", ExecRequest{
		Worker: engine.AnyWorker,
		Ops: []Op{
			{Kind: OpWrite, Var: 0, Val: 41},
			{Kind: OpIncr, Var: 0, Val: 1},
			{Kind: OpRead, Var: 0},
		},
	}, &resp)
	if status != http.StatusOK {
		t.Fatalf("exec status = %d", status)
	}
	if !resp.Committed {
		t.Fatalf("exec did not commit: %+v", resp)
	}
	if len(resp.Reads) != 2 || resp.Reads[0] != 41 || resp.Reads[1] != 42 {
		t.Fatalf("reads = %v, want [41 42]", resp.Reads)
	}
}

func TestExecBadProgram(t *testing.T) {
	_, hs := testServer(t, Config{})
	var er ErrorResponse
	status := post(t, hs.URL+"/v1/exec", ExecRequest{
		Worker: engine.AnyWorker,
		Ops:    []Op{{Kind: OpRead, Var: 99}},
	}, &er)
	if status != http.StatusBadRequest || er.Code != CodeBadRequest {
		t.Fatalf("out-of-range var: status %d code %q", status, er.Code)
	}
	status = post(t, hs.URL+"/v1/exec", ExecRequest{
		Worker: engine.AnyWorker,
		Ops:    []Op{{Kind: "frob", Var: 0}},
	}, &er)
	if status != http.StatusBadRequest {
		t.Fatalf("unknown kind: status %d", status)
	}
}

func TestSubmitWait(t *testing.T) {
	_, hs := testServer(t, Config{})
	var sub SubmitResponse
	status := post(t, hs.URL+"/v1/submit", ExecRequest{
		Worker: engine.AnyWorker,
		Ops:    []Op{{Kind: OpIncr, Var: 1, Val: 7}},
	}, &sub)
	if status != http.StatusOK || sub.ID == "" {
		t.Fatalf("submit: status %d id %q", status, sub.ID)
	}
	var res ExecResponse
	status = post(t, hs.URL+"/v1/wait", WaitRequest{ID: sub.ID}, &res)
	if status != http.StatusOK || !res.Committed {
		t.Fatalf("wait: status %d resp %+v", status, res)
	}
	// A second wait on the same id is a 404: the result is consumed.
	var er ErrorResponse
	if status = post(t, hs.URL+"/v1/wait", WaitRequest{ID: sub.ID}, &er); status != http.StatusNotFound {
		t.Fatalf("re-wait status = %d", status)
	}
}

func TestInteractiveCommit(t *testing.T) {
	_, hs := testServer(t, Config{})
	var begin BeginResponse
	if status := post(t, hs.URL+"/v1/tx/begin", BeginRequest{Worker: 0}, &begin); status != http.StatusOK {
		t.Fatalf("begin status = %d", status)
	}
	var opResp TxOpResponse
	status := post(t, hs.URL+"/v1/tx/op", TxOpRequest{
		Txn: begin.Txn, Op: Op{Kind: OpWrite, Var: 2, Val: 13},
	}, &opResp)
	if status != http.StatusOK || opResp.Aborted {
		t.Fatalf("write: status %d resp %+v", status, opResp)
	}
	status = post(t, hs.URL+"/v1/tx/op", TxOpRequest{
		Txn: begin.Txn, Op: Op{Kind: OpRead, Var: 2},
	}, &opResp)
	if status != http.StatusOK || opResp.Val != 13 {
		t.Fatalf("read: status %d resp %+v", status, opResp)
	}
	var fin TxFinishResponse
	status = post(t, hs.URL+"/v1/tx/finish", TxFinishRequest{Txn: begin.Txn, Mode: FinishCommit}, &fin)
	if status != http.StatusOK || !fin.Committed || fin.Retrying {
		t.Fatalf("finish: status %d resp %+v", status, fin)
	}
	// The committed value is visible to a fresh program.
	var res ExecResponse
	post(t, hs.URL+"/v1/exec", ExecRequest{Worker: engine.AnyWorker, Ops: []Op{{Kind: OpRead, Var: 2}}}, &res)
	if len(res.Reads) != 1 || res.Reads[0] != 13 {
		t.Fatalf("post-commit read = %v, want [13]", res.Reads)
	}
}

func TestInteractiveNoCommitAndAbandon(t *testing.T) {
	_, hs := testServer(t, Config{})
	var begin BeginResponse
	post(t, hs.URL+"/v1/tx/begin", BeginRequest{Worker: 0}, &begin)
	var fin TxFinishResponse
	status := post(t, hs.URL+"/v1/tx/finish", TxFinishRequest{Txn: begin.Txn, Mode: FinishNoCommit}, &fin)
	if status != http.StatusOK || fin.Committed || fin.Code != CodeNoCommit {
		t.Fatalf("nocommit finish: status %d resp %+v", status, fin)
	}

	post(t, hs.URL+"/v1/tx/begin", BeginRequest{Worker: 1}, &begin)
	var opResp TxOpResponse
	post(t, hs.URL+"/v1/tx/op", TxOpRequest{Txn: begin.Txn, Op: Op{Kind: OpWrite, Var: 0, Val: 1}}, &opResp)
	status = post(t, hs.URL+"/v1/tx/finish", TxFinishRequest{Txn: begin.Txn, Mode: FinishAbandon}, &fin)
	if status != http.StatusOK || fin.Code != CodeAbandoned {
		t.Fatalf("abandon finish: status %d resp %+v", status, fin)
	}
	// The id is gone afterwards.
	var er ErrorResponse
	if status = post(t, hs.URL+"/v1/tx/op", TxOpRequest{Txn: begin.Txn, Op: Op{Kind: OpRead, Var: 0}}, &er); status != http.StatusNotFound {
		t.Fatalf("op after abandon: status %d", status)
	}
}

func TestAdmissionOverload(t *testing.T) {
	reg := telemetry.NewRegistry()
	_, hs := testServer(t, Config{MaxInflight: 1, RetryAfter: 80 * time.Millisecond, Registry: reg,
		Info: InfoResponse{Engine: "native-tl2", Workers: 2, Vars: 4}})
	// One interactive transaction occupies the only slot...
	var begin BeginResponse
	if status := postAs(t, hs.URL+"/v1/tx/begin", "greedy", BeginRequest{Worker: 0}, &begin); status != http.StatusOK {
		t.Fatalf("begin status = %d", status)
	}
	// ...so both the same client and a second one are refused with 429.
	var buf bytes.Buffer
	_ = (JSONCodec{}).Encode(&buf, ExecRequest{Worker: engine.AnyWorker, Ops: []Op{{Kind: OpRead, Var: 0}}})
	req, _ := http.NewRequest(http.MethodPost, hs.URL+"/v1/exec", &buf)
	req.Header.Set(ClientHeader, "greedy")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("exec: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overloaded exec status = %d", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatalf("429 without Retry-After header")
	}
	var er ErrorResponse
	if err := (JSONCodec{}).Decode(resp.Body, &er); err != nil {
		t.Fatalf("decode 429 body: %v", err)
	}
	if er.Code != CodeOverloaded || er.RetryAfterMS != 80 {
		t.Fatalf("429 body = %+v", er)
	}
	if errors.Is(SentinelOf(er.Code), engine.ErrOverloaded) == false {
		t.Fatalf("code %q does not map back to ErrOverloaded", er.Code)
	}
	// The per-client instruments moved.
	snap := reg.Snapshot()
	found := false
	for _, fam := range snap.Families {
		if fam.Name == "livetm_server_rejected_total" {
			found = true
		}
	}
	if !found {
		t.Fatalf("livetm_server_rejected_total not registered; families: %+v", snap.Families)
	}
	// Freeing the slot readmits.
	var fin TxFinishResponse
	post(t, hs.URL+"/v1/tx/finish", TxFinishRequest{Txn: begin.Txn, Mode: FinishAbandon}, &fin)
	var res ExecResponse
	if status := postAs(t, hs.URL+"/v1/exec", "greedy", ExecRequest{Worker: engine.AnyWorker, Ops: []Op{{Kind: OpRead, Var: 0}}}, &res); status != http.StatusOK {
		t.Fatalf("exec after release: status %d", status)
	}
}

func TestAdmissionFairShare(t *testing.T) {
	a := newAdmission(4, 0, nil)
	must := func(client string) {
		t.Helper()
		if err := a.acquire(client); err != nil {
			t.Fatalf("acquire(%s): %v", client, err)
		}
	}
	must("a")
	must("b")
	must("a") // a at 2 = its share of 4 between 2 actives
	if err := a.acquire("a"); !errors.Is(err, engine.ErrOverloaded) {
		t.Fatalf("a's 3rd acquire = %v, want ErrOverloaded", err)
	}
	must("b") // b still gets its share while a is refused
	a.release("a")
	a.release("a")
	a.release("b")
	a.release("b")
	if n := a.inflightTotal(); n != 0 {
		t.Fatalf("inflight after release = %d", n)
	}
}

func TestDrainRefusesAndReports(t *testing.T) {
	srv, hs := testServer(t, Config{})
	var begin BeginResponse
	post(t, hs.URL+"/v1/tx/begin", BeginRequest{Worker: 0}, &begin)
	var dr DrainResponse
	if status := post(t, hs.URL+"/v1/drain", struct{}{}, &dr); status != http.StatusOK {
		t.Fatalf("drain status = %d", status)
	}
	if dr.Stats.Submitted == 0 {
		t.Fatalf("drain stats empty: %+v", dr.Stats)
	}
	select {
	case <-srv.Done():
	default:
		t.Fatalf("Done not closed after drain")
	}
	var er ErrorResponse
	if status := post(t, hs.URL+"/v1/exec", ExecRequest{Worker: engine.AnyWorker, Ops: []Op{{Kind: OpRead, Var: 0}}}, &er); status != http.StatusServiceUnavailable || er.Code != CodeClosed {
		t.Fatalf("exec after drain: status %d code %q", status, er.Code)
	}
}

func TestWireCodeTables(t *testing.T) {
	cases := []struct {
		err    error
		code   string
		status int
	}{
		{engine.ErrOverloaded, CodeOverloaded, http.StatusTooManyRequests},
		{engine.ErrClosed, CodeClosed, http.StatusServiceUnavailable},
		{engine.ErrStopped, CodeStopped, http.StatusServiceUnavailable},
		{engine.ErrStepBudget, CodeStepBudget, http.StatusServiceUnavailable},
		{engine.ErrBusy, CodeBusy, http.StatusConflict},
		{engine.ErrNoCommit, CodeNoCommit, http.StatusInternalServerError},
		{engine.ErrLiveViolation, CodeViolation, http.StatusServiceUnavailable},
		{errAbandoned, CodeAbandoned, http.StatusInternalServerError},
		{errors.New("surprise"), CodeInternal, http.StatusInternalServerError},
	}
	for _, c := range cases {
		if got := CodeOf(c.err); got != c.code {
			t.Errorf("CodeOf(%v) = %q, want %q", c.err, got, c.code)
		}
		if got := StatusOf(c.code); got != c.status {
			t.Errorf("StatusOf(%q) = %d, want %d", c.code, got, c.status)
		}
	}
	// Sentinels survive the round trip for every engine sentinel.
	for _, err := range []error{
		engine.ErrOverloaded, engine.ErrClosed, engine.ErrStopped,
		engine.ErrStepBudget, engine.ErrBusy, engine.ErrNoCommit,
		engine.ErrLiveViolation,
	} {
		if back := SentinelOf(CodeOf(err)); !errors.Is(back, err) {
			t.Errorf("sentinel round trip lost %v (got %v)", err, back)
		}
	}
}
