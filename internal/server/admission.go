package server

import (
	"sync"
	"time"

	"livetm/internal/engine"
	"livetm/internal/telemetry"
)

// evictedClient labels the aggregate series that absorbs the final
// counter values of evicted clients, so family totals stay monotone
// across evictions even though per-client series come and go.
const evictedClient = "(evicted)"

// admission is the server's slot accountant. Every submission —
// blocking exec, async submit, interactive transaction — holds one
// slot from acceptance to completion. Two limits apply at acquire
// time: the global cap (max, 0 = unbounded), and each client's fair
// share of it, recomputed against the set of currently-active clients
// so a flooding client hits its share while a light one is still
// admitted. Refusal is immediate and never blocks: the caller turns
// it into ErrOverloaded / HTTP 429 with a Retry-After hint.
//
// Per-client accounts are evicted once they have been idle (zero in
// flight, no acquire attempts) for idleAfter, bounding both the
// clients map and the telemetry registry under workloads with
// ephemeral client names; the retiring counters are folded into a
// client="(evicted)" aggregate first, so registry family totals stay
// monotone. A release with no matching account (or none in flight) is
// a protocol anomaly, counted rather than silently dropped.
type admission struct {
	mu        sync.Mutex
	max       int
	total     int
	clients   map[string]*clientSlots
	reg       *telemetry.Registry
	idleAfter time.Duration
	lastSweep time.Time
	now       func() time.Time // injectable clock for eviction tests

	cUnknown    *telemetry.Counter // releases with no matching acquire
	cEvicted    *telemetry.Counter // client accounts evicted as idle
	evRejected  *telemetry.Counter // fold target for evicted rejected counts
	evRetryHint *telemetry.Counter // fold target for evicted retry hints
}

// clientSlots is one client's admission account and its per-client
// instrument handles. The handles are bare instruments when the
// server has no registry (the sessionMetrics convention), so the
// accounting path carries no nil checks.
type clientSlots struct {
	inflight   int
	idleAt     time.Time // last acquire attempt or drop to zero in flight
	gInflight  *telemetry.Gauge
	cRejected  *telemetry.Counter
	cRetryHint *telemetry.Counter
}

// newAdmission builds the accountant. idleAfter <= 0 disables
// eviction (callers resolve the default; see Config.ClientIdleAfter).
func newAdmission(max int, idleAfter time.Duration, reg *telemetry.Registry) *admission {
	a := &admission{
		max:       max,
		clients:   make(map[string]*clientSlots),
		reg:       reg,
		idleAfter: idleAfter,
		now:       time.Now,
	}
	if reg != nil {
		a.cUnknown = reg.Counter("livetm_server_release_unknown_total",
			"Slot releases with no matching admitted client (protocol anomaly)")
		a.cEvicted = reg.Counter("livetm_server_clients_evicted_total",
			"Idle client admission accounts evicted")
		a.evRejected = reg.Counter("livetm_server_rejected_total",
			"Submissions refused by admission control per client", "client", evictedClient)
		a.evRetryHint = reg.Counter("livetm_server_retry_after_total",
			"Retry-After hints issued per client", "client", evictedClient)
	} else {
		a.cUnknown = &telemetry.Counter{}
		a.cEvicted = &telemetry.Counter{}
		a.evRejected = &telemetry.Counter{}
		a.evRetryHint = &telemetry.Counter{}
	}
	return a
}

// slotsFor resolves (or fabricates, registry-free) the client's
// account. Callers hold a.mu. The client label is client-supplied by
// design (per-client fairness needs per-client series); the space is
// bounded at runtime by idle eviction — sweep() unregisters series for
// clients idle past ClientIdleAfter and folds their counters into the
// "(evicted)" aggregate, which is the leak fix the telemetrylabel rule
// exists to guard, hence the allowance below.
//
//lint:allow(telemetrylabel) client label is bounded at runtime by idle eviction (sweep folds retired series into "(evicted)")
func (a *admission) slotsFor(client string) *clientSlots {
	cs := a.clients[client]
	if cs == nil {
		cs = &clientSlots{}
		if a.reg != nil {
			cs.gInflight = a.reg.Gauge("livetm_server_inflight",
				"Admitted submissions currently in flight per client", "client", client)
			cs.cRejected = a.reg.Counter("livetm_server_rejected_total",
				"Submissions refused by admission control per client", "client", client)
			cs.cRetryHint = a.reg.Counter("livetm_server_retry_after_total",
				"Retry-After hints issued per client", "client", client)
		} else {
			cs.gInflight = &telemetry.Gauge{}
			cs.cRejected = &telemetry.Counter{}
			cs.cRetryHint = &telemetry.Counter{}
		}
		a.clients[client] = cs
	}
	return cs
}

// acquire takes one slot for client, or refuses with ErrOverloaded.
// The fair share is ceil(max / active) where active counts every
// client with work in flight plus the requester itself; with max 0
// admission is unbounded and only the engine's own MaxQueue pushes
// back.
func (a *admission) acquire(client string) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.sweep()
	cs := a.slotsFor(client)
	cs.idleAt = a.now()
	if a.max > 0 {
		refuse := a.total >= a.max
		if !refuse {
			active := 1 // the requester
			for _, other := range a.clients {
				if other != cs && other.inflight > 0 {
					active++
				}
			}
			share := (a.max + active - 1) / active
			refuse = cs.inflight >= share
		}
		if refuse {
			cs.cRejected.Inc()
			cs.cRetryHint.Inc()
			return engine.ErrOverloaded
		}
	}
	cs.inflight++
	a.total++
	cs.gInflight.Set(int64(cs.inflight))
	return nil
}

// release returns client's slot. A release for a client that holds no
// slot — unknown name, already evicted, or more releases than
// acquires — is counted as an anomaly instead of silently ignored.
func (a *admission) release(client string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	cs := a.clients[client]
	if cs == nil || cs.inflight == 0 {
		a.cUnknown.Inc()
		return
	}
	cs.inflight--
	a.total--
	cs.gInflight.Set(int64(cs.inflight))
	if cs.inflight == 0 {
		cs.idleAt = a.now()
	}
	a.sweep()
}

// sweep evicts every account that has sat at zero in flight for at
// least idleAfter, amortized to run at most once per idleAfter/4.
// Final rejected/retry-hint counts fold into the "(evicted)" aggregate
// before the per-client series leave the registry, so family totals
// never step backward; a client that reappears later gets a fresh
// account (its per-series counters restart at zero, the standard
// reset semantics of a series that was retired). Callers hold a.mu.
func (a *admission) sweep() {
	if a.idleAfter <= 0 {
		return
	}
	n := a.now()
	if n.Sub(a.lastSweep) < a.idleAfter/4 {
		return
	}
	a.lastSweep = n
	for name, cs := range a.clients {
		if cs.inflight != 0 || n.Sub(cs.idleAt) < a.idleAfter {
			continue
		}
		a.evRejected.Add(cs.cRejected.Load())
		a.evRetryHint.Add(cs.cRetryHint.Load())
		if a.reg != nil {
			a.reg.Unregister("livetm_server_inflight", "client", name)
			a.reg.Unregister("livetm_server_rejected_total", "client", name)
			a.reg.Unregister("livetm_server_retry_after_total", "client", name)
		}
		delete(a.clients, name)
		a.cEvicted.Inc()
	}
}

// inflightTotal reports the slots currently held (drain watches this
// reach zero through the backend's own Drain, so this is diagnostic).
func (a *admission) inflightTotal() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.total
}

// clientCount reports the tracked admission accounts (diagnostic; the
// eviction tests assert it stays bounded under ephemeral names).
func (a *admission) clientCount() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.clients)
}
