package server

import (
	"sync"

	"livetm/internal/engine"
	"livetm/internal/telemetry"
)

// admission is the server's slot accountant. Every submission —
// blocking exec, async submit, interactive transaction — holds one
// slot from acceptance to completion. Two limits apply at acquire
// time: the global cap (max, 0 = unbounded), and each client's fair
// share of it, recomputed against the set of currently-active clients
// so a flooding client hits its share while a light one is still
// admitted. Refusal is immediate and never blocks: the caller turns
// it into ErrOverloaded / HTTP 429 with a Retry-After hint.
type admission struct {
	mu      sync.Mutex
	max     int
	total   int
	clients map[string]*clientSlots
	reg     *telemetry.Registry
}

// clientSlots is one client's admission account and its per-client
// instrument handles. The handles are bare instruments when the
// server has no registry (the sessionMetrics convention), so the
// accounting path carries no nil checks.
type clientSlots struct {
	inflight   int
	gInflight  *telemetry.Gauge
	cRejected  *telemetry.Counter
	cRetryHint *telemetry.Counter
}

func newAdmission(max int, reg *telemetry.Registry) *admission {
	return &admission{max: max, clients: make(map[string]*clientSlots), reg: reg}
}

// slotsFor resolves (or fabricates, registry-free) the client's
// account. Callers hold a.mu.
func (a *admission) slotsFor(client string) *clientSlots {
	cs := a.clients[client]
	if cs == nil {
		cs = &clientSlots{}
		if a.reg != nil {
			cs.gInflight = a.reg.Gauge("livetm_server_inflight",
				"Admitted submissions currently in flight per client", "client", client)
			cs.cRejected = a.reg.Counter("livetm_server_rejected_total",
				"Submissions refused by admission control per client", "client", client)
			cs.cRetryHint = a.reg.Counter("livetm_server_retry_after_total",
				"Retry-After hints issued per client", "client", client)
		} else {
			cs.gInflight = &telemetry.Gauge{}
			cs.cRejected = &telemetry.Counter{}
			cs.cRetryHint = &telemetry.Counter{}
		}
		a.clients[client] = cs
	}
	return cs
}

// acquire takes one slot for client, or refuses with ErrOverloaded.
// The fair share is ceil(max / active) where active counts every
// client with work in flight plus the requester itself; with max 0
// admission is unbounded and only the engine's own MaxQueue pushes
// back.
func (a *admission) acquire(client string) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	cs := a.slotsFor(client)
	if a.max > 0 {
		refuse := a.total >= a.max
		if !refuse {
			active := 1 // the requester
			for _, other := range a.clients {
				if other != cs && other.inflight > 0 {
					active++
				}
			}
			share := (a.max + active - 1) / active
			refuse = cs.inflight >= share
		}
		if refuse {
			cs.cRejected.Inc()
			cs.cRetryHint.Inc()
			return engine.ErrOverloaded
		}
	}
	cs.inflight++
	a.total++
	cs.gInflight.Set(int64(cs.inflight))
	return nil
}

// release returns client's slot.
func (a *admission) release(client string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	cs := a.clients[client]
	if cs == nil || cs.inflight == 0 {
		return
	}
	cs.inflight--
	a.total--
	cs.gInflight.Set(int64(cs.inflight))
}

// inflightTotal reports the slots currently held (drain watches this
// reach zero through the backend's own Drain, so this is diagnostic).
func (a *admission) inflightTotal() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.total
}
