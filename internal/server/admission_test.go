package server

import (
	"fmt"
	"testing"
	"time"

	"livetm/internal/telemetry"
)

// TestAdmissionEvictsIdleClients drives 1000 ephemeral client names
// through the accountant and asserts both the clients map and the
// per-client telemetry series stay bounded — the leak this change
// fixes — while a long-lived client with work in flight is never
// evicted regardless of age.
func TestAdmissionEvictsIdleClients(t *testing.T) {
	reg := telemetry.NewRegistry()
	const idle = time.Second
	a := newAdmission(64, idle, reg)
	clock := time.Unix(1000, 0)
	a.now = func() time.Time { return clock }

	if err := a.acquire("resident"); err != nil {
		t.Fatalf("resident acquire: %v", err)
	}

	for i := 0; i < 1000; i++ {
		name := fmt.Sprintf("eph-%d", i)
		if err := a.acquire(name); err != nil {
			t.Fatalf("acquire %s: %v", name, err)
		}
		a.release(name)
		clock = clock.Add(10 * time.Millisecond)
	}
	// One last nudge well past the grace period so the final sweep can
	// collect the tail.
	clock = clock.Add(2 * idle)
	a.release("resident")
	if err := a.acquire("resident"); err != nil {
		t.Fatalf("resident reacquire: %v", err)
	}

	// Sweeps are amortized to one per idleAfter/4, so a bounded lag of
	// un-evicted accounts is expected; 1000 distinct names must not be.
	if n := a.clientCount(); n > 200 {
		t.Fatalf("clientCount = %d after 1000 ephemeral clients, want bounded (≤200)", n)
	}
	snap := reg.Snapshot()
	for _, fam := range []string{
		"livetm_server_inflight",
		"livetm_server_rejected_total",
		"livetm_server_retry_after_total",
	} {
		f := snap.Family(fam)
		if f == nil {
			t.Fatalf("family %s missing", fam)
		}
		if len(f.Series) > 201 {
			t.Fatalf("family %s has %d series, want bounded (≤201)", fam, len(f.Series))
		}
	}
	if v, _ := snap.Value("livetm_server_clients_evicted_total"); v < 800 {
		t.Fatalf("evicted counter = %v, want ≥ 800", v)
	}
	// The resident client survived every sweep with its slot intact.
	if v, ok := snap.Value("livetm_server_inflight", "client", "resident"); !ok || v != 1 {
		t.Fatalf("resident inflight = %v, %v; want 1, true", v, ok)
	}
	a.release("resident")
}

// TestAdmissionEvictionKeepsMonotoneCounters evicts a client that
// accumulated refusals, lets it reappear, and asserts the registry's
// family totals never step backward: the retiring per-client counts
// fold into the "(evicted)" aggregate, and the reincarnated client's
// fresh series only adds on top.
func TestAdmissionEvictionKeepsMonotoneCounters(t *testing.T) {
	reg := telemetry.NewRegistry()
	const idle = time.Second
	a := newAdmission(1, idle, reg)
	clock := time.Unix(1000, 0)
	a.now = func() time.Time { return clock }

	// "hog" takes the only slot; "victim" is refused twice.
	if err := a.acquire("hog"); err != nil {
		t.Fatalf("hog acquire: %v", err)
	}
	for i := 0; i < 2; i++ {
		if err := a.acquire("victim"); err == nil {
			t.Fatalf("victim acquire %d admitted past the cap", i)
		}
	}
	before := reg.Snapshot().Total("livetm_server_rejected_total")
	if before != 2 {
		t.Fatalf("rejected total = %v, want 2", before)
	}

	// Idle the victim past the grace period and force a sweep.
	a.release("hog")
	clock = clock.Add(2 * idle)
	if err := a.acquire("sweeper"); err != nil {
		t.Fatalf("sweeper acquire: %v", err)
	}
	snap := reg.Snapshot()
	if _, ok := snap.Value("livetm_server_rejected_total", "client", "victim"); ok {
		t.Fatalf("victim series survived eviction")
	}
	if got := snap.Total("livetm_server_rejected_total"); got != before {
		t.Fatalf("rejected total after eviction = %v, want %v (monotone)", got, before)
	}
	if v, ok := snap.Value("livetm_server_rejected_total", "client", evictedClient); !ok || v != 2 {
		t.Fatalf("evicted aggregate = %v, %v; want 2, true", v, ok)
	}

	// The victim reappears: a fresh account, counted on top of the fold.
	if err := a.acquire("victim"); err == nil {
		t.Fatalf("reincarnated victim admitted past the cap")
	}
	if got := reg.Snapshot().Total("livetm_server_rejected_total"); got != before+1 {
		t.Fatalf("rejected total after reappearance = %v, want %v", got, before+1)
	}
	a.release("sweeper")
}

// TestAdmissionUnknownReleaseCounted asserts a release with no
// matching acquire — unknown client, or double release — increments
// the anomaly counter instead of silently vanishing.
func TestAdmissionUnknownReleaseCounted(t *testing.T) {
	reg := telemetry.NewRegistry()
	a := newAdmission(4, -1, reg)

	a.release("ghost")
	if err := a.acquire("real"); err != nil {
		t.Fatalf("acquire: %v", err)
	}
	a.release("real")
	a.release("real") // double release
	snap := reg.Snapshot()
	if v, _ := snap.Value("livetm_server_release_unknown_total"); v != 2 {
		t.Fatalf("unknown-release counter = %v, want 2", v)
	}
	if a.inflightTotal() != 0 {
		t.Fatalf("inflightTotal = %d, want 0", a.inflightTotal())
	}
}

// TestAdmissionNoEvictionWhenDisabled pins the negative-ClientIdleAfter
// contract: idleAfter <= 0 never evicts.
func TestAdmissionNoEvictionWhenDisabled(t *testing.T) {
	a := newAdmission(4, -1, nil)
	clock := time.Unix(1000, 0)
	a.now = func() time.Time { return clock }
	for i := 0; i < 10; i++ {
		name := fmt.Sprintf("c-%d", i)
		if err := a.acquire(name); err != nil {
			t.Fatalf("acquire: %v", err)
		}
		a.release(name)
		clock = clock.Add(time.Hour)
	}
	if n := a.clientCount(); n != 10 {
		t.Fatalf("clientCount = %d with eviction disabled, want 10", n)
	}
}
