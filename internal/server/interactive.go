package server

import (
	"errors"
	"sync"
	"sync/atomic"

	"livetm/internal/engine"
)

// errAbandoned is the terminal result of an abandoned interactive
// transaction. It is deliberately not engine.ErrAborted: the native
// retry loop treats any other body error as terminal, tears the
// attempt down (releasing whatever it holds), and reports the error
// through the submission's done callback — exactly the teardown an
// abandon wants.
var errAbandoned = errors.New("server: interactive transaction abandoned")

// icmd kinds.
const (
	icRead = iota
	icWrite
	icFinish
	icNoCommit
)

// icmd is one client op relayed into the parked transaction body.
type icmd struct {
	kind  int
	varIx int
	val   int64
	reply chan ireply // cap 1: the body's send never blocks
}

// ireply is the body's answer: the value read, the attempt that
// served the op, and — for reads and writes — the op's abort error,
// after which the retry loop re-enters the body as a fresh attempt.
type ireply struct {
	val     int64
	attempt int64
	err     error
}

// itx is one interactive transaction: a submission whose body parks
// on a worker goroutine between ops, relaying reads and writes from
// the wire into the live engine.Tx. The body is re-entered by the
// engine's retry loop after every abort, so one itx spans many
// attempts; the attempt counter plus the entered signal are how a
// finish distinguishes "commit succeeded" from "commit aborted and
// the transaction is open again" without racing the loop.
type itx struct {
	id     string
	client string
	worker int

	cmds    chan *icmd
	entered chan struct{} // cap 1: pulsed at each body entry
	attempt atomic.Int64

	abandon     chan struct{}
	abandonOnce sync.Once

	complete chan struct{} // closed by the done callback
	result   error

	// opMu serializes this transaction's wire ops: the gate protocol
	// is strictly one op at a time per transaction (concurrent ops on
	// one txn id would race the attempt accounting).
	opMu sync.Mutex
}

func newItx(id, client string, worker int) *itx {
	return &itx{
		id:       id,
		client:   client,
		worker:   worker,
		cmds:     make(chan *icmd),
		entered:  make(chan struct{}, 1),
		abandon:  make(chan struct{}),
		complete: make(chan struct{}),
	}
}

// body is the transaction body submitted to the session. Every entry
// is one attempt: bump the counter, pulse entered, then serve ops
// until one aborts (return the error — the retry loop re-enters), a
// finish hands the attempt to the commit path (return nil), a
// nocommit declines the round, or an abandon tears the whole
// transaction down.
func (t *itx) body(tx engine.Tx) error {
	t.attempt.Add(1)
	select {
	case t.entered <- struct{}{}:
	default:
	}
	for {
		select {
		case <-t.abandon:
			return errAbandoned
		case c := <-t.cmds:
			att := t.attempt.Load()
			switch c.kind {
			case icRead:
				v, err := tx.Read(c.varIx)
				c.reply <- ireply{val: v, attempt: att, err: err}
				if err != nil {
					return err
				}
			case icWrite:
				err := tx.Write(c.varIx, c.val)
				c.reply <- ireply{attempt: att, err: err}
				if err != nil {
					return err
				}
			case icFinish:
				c.reply <- ireply{attempt: att}
				return nil
			case icNoCommit:
				c.reply <- ireply{attempt: att}
				return engine.ErrNoCommit
			}
		}
	}
}

// finished is the submission's done callback. It runs on the worker
// goroutine and must not block: record the terminal result and close
// complete (the server's registered cleanup hooks run off the same
// callback, see Server.trackItx).
func (t *itx) finished(err error) {
	t.result = err
	close(t.complete)
}

// abandonNow requests teardown. Idempotent; the body observes the
// closed channel at its next park and returns errAbandoned, which
// the engine treats as terminal.
func (t *itx) abandonNow() {
	t.abandonOnce.Do(func() { close(t.abandon) })
}

// drainEntered clears a stale entry pulse so a finish that follows
// can attribute the next pulse to the retry loop, not to the attempt
// it is about to end. Callers hold opMu.
func (t *itx) drainEntered() {
	select {
	case <-t.entered:
	default:
	}
}
