package server

import (
	"encoding/json"
	"io"
)

// Codec frames wire bodies. The server negotiates nothing: one codec
// is configured on each side, and the HTTP Content-Type carries its
// name. Keeping the frame encoding behind this boundary is what lets
// a compact binary framing replace JSON later without touching the
// handlers, the client, or the wire vocabulary in wire.go.
type Codec interface {
	// Name is the codec's short name ("json").
	Name() string
	// ContentType is the HTTP content type of encoded frames.
	ContentType() string
	// Encode writes v's frame to w.
	Encode(w io.Writer, v any) error
	// Decode reads one frame from r into v.
	Decode(r io.Reader, v any) error
}

// JSONCodec is the default codec: one JSON document per frame.
type JSONCodec struct{}

// Name implements Codec.
func (JSONCodec) Name() string { return "json" }

// ContentType implements Codec.
func (JSONCodec) ContentType() string { return "application/json" }

// Encode implements Codec.
func (JSONCodec) Encode(w io.Writer, v any) error { return json.NewEncoder(w).Encode(v) }

// Decode implements Codec.
func (JSONCodec) Decode(r io.Reader, v any) error { return json.NewDecoder(r).Decode(v) }
