package workload

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"time"

	"livetm/internal/engine"
	"livetm/internal/model"
	"livetm/internal/monitor"
	"livetm/internal/safety"
	"livetm/internal/telemetry"
)

// The workload matrix is declared once — process count × read/write
// mix × contention level × disjoint/shared variable sharing — and
// executed against every (algorithm, substrate) pair through the
// engine API. The benchmark harness (bench_test.go) and the livetm
// workloads subcommand both run exactly this declaration, so the
// matrix cannot drift between the two.

// Mix is the read/write composition of one transaction.
type Mix struct {
	Name   string
	Reads  int
	Writes int
}

// Mixes are the matrix's read/write compositions.
func Mixes() []Mix {
	return []Mix{
		{Name: "update", Reads: 1, Writes: 1},
		{Name: "readheavy", Reads: 8, Writes: 1},
		{Name: "writeheavy", Reads: 1, Writes: 4},
	}
}

// Sharing says whether processes share variables or work on disjoint
// partitions.
type Sharing string

// Sharing levels.
const (
	Disjoint Sharing = "disjoint"
	Shared   Sharing = "shared"
)

// Contention scales the variable set: few variables mean hot
// conflicts, many mean cold.
type Contention struct {
	Name        string
	VarsPerProc int
}

// Contentions are the matrix's contention levels.
func Contentions() []Contention {
	return []Contention{
		{Name: "hot", VarsPerProc: 1},
		{Name: "cold", VarsPerProc: 16},
	}
}

// Spec is one point of the workload matrix.
type Spec struct {
	Name       string
	Procs      int
	Vars       int
	Mix        Mix
	Contention Contention
	Sharing    Sharing
}

// Matrix declares the full workload matrix for the given process
// counts: procs × mixes × contentions × sharings.
func Matrix(procs []int) []Spec {
	var specs []Spec
	for _, p := range procs {
		for _, mix := range Mixes() {
			for _, c := range Contentions() {
				for _, sh := range []Sharing{Disjoint, Shared} {
					specs = append(specs, Spec{
						Name:       fmt.Sprintf("p%d/%s/%s/%s", p, mix.Name, c.Name, sh),
						Procs:      p,
						Vars:       p * c.VarsPerProc,
						Mix:        mix,
						Contention: c,
						Sharing:    sh,
					})
				}
			}
		}
	}
	return specs
}

// Body returns the spec's transaction body: Mix.Reads reads followed
// by Mix.Writes read-modify-writes over the spec's variable range —
// the whole range when Shared, the process's own partition when
// Disjoint. Variable choice is a pure function of (proc, round), so
// the body is idempotent across retries and identical on both
// substrates.
func (s Spec) Body() engine.TxBody {
	perProc := s.Vars / s.Procs
	if perProc == 0 {
		// Vars < Procs cannot give every process a disjoint
		// partition; degrade to one variable per process so the
		// engine reports a clean out-of-range error for the excess
		// processes instead of this body dividing by zero.
		perProc = 1
	}
	return func(proc, round int, tx engine.Tx) error {
		h := uint64(proc)*2654435761 + uint64(round)*97 + 1
		pick := func() int {
			h ^= h << 13
			h ^= h >> 7
			h ^= h << 17
			if s.Sharing == Disjoint {
				return proc*perProc + int(h%uint64(perProc))
			}
			return int(h % uint64(s.Vars))
		}
		for r := 0; r < s.Mix.Reads; r++ {
			if _, err := tx.Read(pick()); err != nil {
				return err
			}
		}
		for w := 0; w < s.Mix.Writes; w++ {
			i := pick()
			v, err := tx.Read(i)
			if err != nil {
				return err
			}
			if err := tx.Write(i, v+1); err != nil {
				return err
			}
		}
		return nil
	}
}

// Budget sizes one matrix cell per substrate. It is embedded in the
// artifact so trajectory comparisons only pit runs with equal
// budgets against each other.
type Budget struct {
	// SimSteps is the cooperative-scheduler step budget for simulated
	// engines.
	SimSteps int `json:"sim_steps"`
	// NativeOps is the committed-transaction budget per process for
	// native engines.
	NativeOps int `json:"native_ops"`
}

// Result is one (engine, workload) cell of an executed matrix.
type Result struct {
	Engine    string  `json:"engine"`
	Algorithm string  `json:"algorithm"`
	Substrate string  `json:"substrate"`
	Workload  string  `json:"workload"`
	Procs     int     `json:"procs"`
	Vars      int     `json:"vars"`
	Commits   uint64  `json:"commits"`
	Aborts    uint64  `json:"aborts"`
	AbortRate float64 `json:"abort_rate"`
	// OpsPerSec is wall-clock committed transactions per second —
	// meaningful on the native substrate only.
	OpsPerSec float64 `json:"ops_per_sec,omitempty"`
	// CommitsPerStep normalizes simulated throughput by scheduler
	// steps — the substrate's deterministic time unit.
	CommitsPerStep float64 `json:"commits_per_step,omitempty"`
	// Recorded and Checked report the Options.Record/Check path: the
	// cell ran with history recording, and the recorded history passed
	// the monitor's well-formedness and opacity checks. A check
	// failure aborts the matrix instead of landing here as false.
	Recorded bool `json:"recorded,omitempty"`
	Checked  bool `json:"checked,omitempty"`
	// Live reports the cell ran under the in-process monitor
	// (Options.Live): events streamed into the checker mid-run, with
	// starvation-aware backoff feedback active.
	Live bool `json:"live,omitempty"`
	// LivenessClass is the strongest liveness-lattice property the
	// live monitor's lasso reading of the cell satisfied ("local
	// progress" … "none"); empty for non-live cells.
	LivenessClass string `json:"liveness_class,omitempty"`
	// ApproxVerdict marks a Checked verdict that rests on forced
	// serialization frontiers (the cut-starved fallback) rather than
	// exact quiescent cuts.
	ApproxVerdict bool `json:"approx_verdict,omitempty"`
	// RecorderOverhead is the cell's recorded-vs-plain slowdown ratio
	// (recorded elapsed / unrecorded elapsed for the same budget),
	// measured when Options.Overhead is set; 0 otherwise.
	RecorderOverhead float64 `json:"recorder_overhead,omitempty"`
	// TelemetryOverhead is the cell's instrumented-vs-bare slowdown
	// ratio: the plain (unrecorded, unmonitored) cell rerun with a
	// telemetry registry attached, over the bare baseline. Measured
	// alongside RecorderOverhead when Options.Overhead is set; the
	// enforced budget is telemetry.OverheadBudgetRatio.
	TelemetryOverhead float64 `json:"telemetry_overhead,omitempty"`
	// BackoffCap is the native retry loop's spin-shift ceiling for the
	// cell — the dynamic range starvation-aware backoff operated in.
	BackoffCap int `json:"backoff_cap,omitempty"`
	// Shards is the cell's keyspace-shard count (0 or 1 = unsharded):
	// per-shard quiescent cuts in the session and one streaming-checker
	// lane per shard in the live monitor.
	Shards int `json:"shards,omitempty"`
	// Cuts, CutP50ns and CutP99ns summarize the cell's quiescent-cut
	// pauses across all shards: how many cuts were forced and the
	// pause-latency percentiles in nanoseconds.
	Cuts     uint64 `json:"cuts,omitempty"`
	CutP50ns int64  `json:"cut_p50_ns,omitempty"`
	CutP99ns int64  `json:"cut_p99_ns,omitempty"`
	// PerShard breaks cut latency and checked segments down by shard on
	// a sharded cell.
	PerShard []ShardResult `json:"per_shard,omitempty"`
}

// ShardResult is one shard's slice of a sharded cell.
type ShardResult struct {
	Shard int `json:"shard"`
	// Cuts, CutP50ns and CutP99ns are the shard's quiescent-cut count
	// and pause-latency percentiles.
	Cuts     uint64 `json:"cuts"`
	CutP50ns int64  `json:"cut_p50_ns"`
	CutP99ns int64  `json:"cut_p99_ns"`
	// Segments is how many stream segments the shard's checker lane
	// verified on its own (live cells only; cross-shard merged segments
	// are attributed to no lane).
	Segments int `json:"segments,omitempty"`
}

// Options selects the optional record/check path of a matrix run.
type Options struct {
	// Record runs every cell with history recording.
	Record bool
	// Check feeds each recorded history through the online monitor
	// (implies Record): a malformed or non-opaque history fails the
	// run. Cells the streaming checker refuses to decide (no quiescent
	// cuts within budget) are reported with Checked=false rather than
	// failing.
	Check bool
	// SegmentTxns is the monitor's per-segment transaction budget
	// (default 48, max 64).
	SegmentTxns int
	// QuiesceEvery is the recorded native runs' rendezvous interval in
	// rounds, planting the quiescent cuts the checker needs. Zero
	// defaults to 4; a negative value disables the rendezvous (cells
	// then usually come back undecided under Check).
	QuiesceEvery int
	// Live runs native cells under the in-process monitor: events
	// stream into the checker while the cell executes, a violation
	// stops the cell mid-flight (failing the matrix), and measured
	// starvation rebiases the retry backoff. Live cells report their
	// liveness class, and under Check their verdict comes from the
	// live monitor itself rather than a post-hoc replay. Simulated
	// cells are unaffected (their substrate rejects Live).
	Live bool
	// Overhead measures each native cell's recording cost: the cell is
	// rerun with recording and monitoring off and the elapsed-time
	// ratio lands in Result.RecorderOverhead.
	Overhead bool
	// Shards sweeps each native recorded/live cell over these keyspace-
	// shard counts (see engine.RunConfig.Shards). 1 is the unsharded
	// baseline; counts that do not fit a cell (not dividing its process
	// count, or exceeding its processes or variables) are skipped for
	// that cell, so one sweep can cover a heterogeneous matrix. Empty
	// means unsharded only.
	Shards []int
}

func (o Options) withDefaults() Options {
	if o.Check {
		o.Record = true
	}
	if o.SegmentTxns <= 0 {
		o.SegmentTxns = 48
	}
	if o.QuiesceEvery == 0 {
		o.QuiesceEvery = 4
	} else if o.QuiesceEvery < 0 {
		o.QuiesceEvery = 0
	}
	return o
}

// RunMatrix executes every spec on every engine and returns the
// result cells in declaration order.
func RunMatrix(engines []engine.Engine, specs []Spec, budget Budget) ([]Result, error) {
	return RunMatrixOptions(engines, specs, budget, Options{})
}

// RunMatrixOptions is RunMatrix with the record/check path: cells on
// recording-capable engines capture their history, and with
// opts.Check each history must satisfy well-formedness and the
// streaming opacity check.
func RunMatrixOptions(engines []engine.Engine, specs []Spec, budget Budget, opts Options) ([]Result, error) {
	opts = opts.withDefaults()
	var out []Result
	for _, e := range engines {
		caps := e.Capabilities()
		for _, spec := range specs {
			cfg := engine.RunConfig{
				Procs: spec.Procs,
				Vars:  spec.Vars,
				Seed:  uint64(len(out) + 1),
			}
			if caps.Substrate == engine.Simulated {
				cfg.SimSteps = budget.SimSteps
			} else {
				cfg.OpsPerProc = budget.NativeOps
			}
			if opts.Record && caps.HistoryRecording {
				cfg.Record = true
				if caps.Substrate == engine.Native {
					cfg.QuiesceEvery = opts.QuiesceEvery
				}
			}
			live := opts.Live && caps.Substrate == engine.Native && caps.HistoryRecording
			if live {
				cfg.Live = true
				if opts.QuiesceEvery == 0 {
					// The user disabled the rendezvous; tell the engine
					// explicitly or it would substitute its live default.
					cfg.QuiesceEvery = -1
				} else {
					cfg.QuiesceEvery = opts.QuiesceEvery
				}
			}
			shardCounts := opts.Shards
			if len(shardCounts) == 0 {
				shardCounts = []int{1}
			}
			for _, shards := range shardCounts {
				if shards > 1 && (caps.Substrate != engine.Native ||
					!(cfg.Record || cfg.Live) ||
					shards&(shards-1) != 0 ||
					spec.Procs%shards != 0 || shards > spec.Procs || shards > spec.Vars) {
					continue // the count does not fit this cell
				}
				cfg.Shards = shards
				r, err := runCell(e, caps, spec, cfg, opts, live, len(out))
				if err != nil {
					return out, err
				}
				out = append(out, r)
			}
		}
	}
	return out, nil
}

// runCell executes one (engine, spec, shard-count) cell.
func runCell(e engine.Engine, caps engine.Capabilities, spec Spec, cfg engine.RunConfig, opts Options, live bool, cell int) (Result, error) {
	cfg.Seed = uint64(cell + 1)
	start := time.Now()
	st, err := e.Run(cfg, spec.Body())
	if err != nil {
		return Result{}, fmt.Errorf("workload %s on %s: %w", spec.Name, e.Name(), err)
	}
	elapsed := time.Since(start).Seconds()
	runElapsed := elapsed // before any post-hoc check time
	r := Result{
		Engine:     e.Name(),
		Algorithm:  e.Algorithm(),
		Substrate:  string(caps.Substrate),
		Workload:   spec.Name,
		Procs:      spec.Procs,
		Vars:       spec.Vars,
		Commits:    st.Commits,
		Aborts:     st.Aborts,
		AbortRate:  st.AbortRate(),
		Recorded:   st.History != nil,
		Live:       live,
		BackoffCap: st.BackoffCap,
	}
	if live && st.Live != nil {
		r.LivenessClass = st.Live.LivenessClass()
		r.ApproxVerdict = st.Live.Opacity.Approx
		if opts.Check {
			// The live monitor already checked the cell as it
			// ran — a violation would have stopped it and failed
			// the matrix above — so its verdict is the cell's.
			r.Checked = st.Live.Checked && st.Live.Opacity.Holds
		}
	} else if opts.Check && r.Recorded {
		// The post-hoc verification is part of the cell's
		// checked-throughput figure: the live path pays its
		// checker inside the run (overlapped on other cores), so
		// the replayed check must stay on the clock too or the
		// two would not be comparable.
		t0 := time.Now()
		checked, err := checkCell(st.History, opts)
		if err != nil {
			return Result{}, fmt.Errorf("workload %s on %s: %w", spec.Name, e.Name(), err)
		}
		r.Checked = checked
		elapsed += time.Since(t0).Seconds()
	}
	if caps.Substrate == engine.Simulated {
		if st.Steps > 0 {
			r.CommitsPerStep = float64(st.Commits) / float64(st.Steps)
		}
	} else if elapsed > 0 {
		// Checked-throughput when the cell was checked (live or
		// post-hoc), raw throughput otherwise.
		r.OpsPerSec = float64(st.Commits) / elapsed
	}
	if opts.Overhead && caps.Substrate == engine.Native && (cfg.Record || cfg.Live) {
		plain := cfg
		plain.Record, plain.Live, plain.QuiesceEvery = false, false, 0
		plain.Shards = 0 // shards exist for the checker the baseline drops
		t0 := time.Now()
		if _, err := e.Run(plain, spec.Body()); err != nil {
			return Result{}, fmt.Errorf("workload %s on %s (overhead baseline): %w", spec.Name, e.Name(), err)
		}
		// The numerator is the cell's run time only — a live
		// run's overlapped monitoring is inherently inside it, a
		// post-hoc check deliberately is not (that cost lands in
		// the checked-throughput OpsPerSec instead).
		base := time.Since(t0).Seconds()
		if base > 0 {
			r.RecorderOverhead = runElapsed / base
		}
		// Telemetry overhead rides on the same bare baseline: the
		// plain cell rerun with a registry attached, so the artifact
		// tracks the instrumentation cost per cell over PRs.
		inst := plain
		inst.Telemetry = telemetry.NewRegistry()
		t1 := time.Now()
		if _, err := e.Run(inst, spec.Body()); err != nil {
			return Result{}, fmt.Errorf("workload %s on %s (telemetry overhead): %w", spec.Name, e.Name(), err)
		}
		if base > 0 {
			r.TelemetryOverhead = time.Since(t1).Seconds() / base
		}
	}
	r.Shards = st.Shards
	r.Cuts = st.CutLatency.Count
	r.CutP50ns = st.CutLatency.P50ns
	r.CutP99ns = st.CutLatency.P99ns
	if cfg.Shards > 1 {
		// Distinguish the sweep's cells from the unsharded run.
		r.Workload += fmt.Sprintf("/s%d", cfg.Shards)
		for k, cs := range st.ShardCuts {
			sr := ShardResult{Shard: k, Cuts: cs.Count, CutP50ns: cs.P50ns, CutP99ns: cs.P99ns}
			if st.Live != nil && k < len(st.Live.ShardSegments) {
				sr.Segments = st.Live.ShardSegments[k]
			}
			r.PerShard = append(r.PerShard, sr)
		}
	}
	return r, nil
}

// checkCell verifies one recorded cell through the online monitor.
// False (with nil error) means the streaming checker could not decide
// the cell within its cut budget.
func checkCell(h model.History, opts Options) (bool, error) {
	if err := model.CheckWellFormed(h); err != nil {
		return false, fmt.Errorf("recorded history malformed: %w", err)
	}
	m, err := monitor.New(monitor.Config{SegmentTxns: opts.SegmentTxns})
	if err != nil {
		return false, err
	}
	obsErr := m.ObserveHistory(h)
	rep := m.Report()
	if !rep.Checked {
		// Undecided, not wrong: the streaming checker ran out of
		// quiescent cuts or search budget, possibly only at Finish
		// time (obsErr nil, reason in the report). Anything else —
		// e.g. a malformed stream, which CheckWellFormed above should
		// have caught — is a real failure.
		if obsErr == nil || errors.Is(obsErr, safety.ErrNoQuiescentCut) || errors.Is(obsErr, safety.ErrTooManyTransactions) {
			return false, nil
		}
		return false, fmt.Errorf("monitor could not decide the cell: %v", obsErr)
	}
	if !rep.Opacity.Holds {
		return false, fmt.Errorf("recorded history not opaque: %s", rep.Opacity.Reason)
	}
	return true, nil
}

// Artifact is the machine-readable benchmark trajectory written to
// BENCH_native.json so successive PRs can compare performance.
type Artifact struct {
	Schema  string   `json:"schema"`
	Budget  Budget   `json:"budget"`
	Results []Result `json:"results"`
}

// ArtifactSchema versions the artifact layout. v2 added the per-cell
// live/checked flags, liveness class, approx-verdict marker, recorder
// overhead ratio and backoff cap, so the BENCH trajectory can compare
// checked-throughput — not just raw throughput — across PRs. v3 adds
// the shard count, the cut-latency summary (count, p50/p99 pause in
// nanoseconds) and the per-shard breakdown (cuts, latency, checker-lane
// segments), so sharded and unsharded cells are comparable in place.
// The per-cell telemetry_overhead ratio is a later additive field —
// absent cells read as unmeasured, so v3 readers stay compatible.
const ArtifactSchema = "livetm/workload-matrix/v3"

// WriteArtifact writes the result cells and the budget they were
// measured under as a JSON artifact.
func WriteArtifact(path string, budget Budget, results []Result) error {
	data, err := json.MarshalIndent(Artifact{Schema: ArtifactSchema, Budget: budget, Results: results}, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// FormatResults renders the cells as an aligned text table. The class
// column appears once any cell carries a liveness classification or an
// overhead figure (live/overhead matrix runs); the cut columns appear
// once any cell took quiescent cuts.
func FormatResults(results []Result) string {
	classes, cuts := false, false
	for _, r := range results {
		if r.LivenessClass != "" || r.RecorderOverhead > 0 {
			classes = true
		}
		if r.Cuts > 0 {
			cuts = true
		}
	}
	out := fmt.Sprintf("%-16s %-24s %10s %10s %7s %12s %14s",
		"engine", "workload", "commits", "aborts", "abrt%", "ops/sec", "commits/step")
	if classes {
		out += fmt.Sprintf(" %-18s %8s", "liveness", "rec-ovh")
	}
	if cuts {
		out += fmt.Sprintf(" %8s %12s", "cuts", "cut-p99")
	}
	out += "\n"
	for _, r := range results {
		rate := ""
		if r.OpsPerSec > 0 {
			rate = fmt.Sprintf("%12.0f", r.OpsPerSec)
		} else {
			rate = fmt.Sprintf("%12s", "-")
		}
		cps := ""
		if r.CommitsPerStep > 0 {
			cps = fmt.Sprintf("%14.4f", r.CommitsPerStep)
		} else {
			cps = fmt.Sprintf("%14s", "-")
		}
		out += fmt.Sprintf("%-16s %-24s %10d %10d %6.1f%% %s %s",
			r.Engine, r.Workload, r.Commits, r.Aborts, 100*r.AbortRate, rate, cps)
		if classes {
			class := r.LivenessClass
			if class == "" {
				class = "-"
			} else if r.ApproxVerdict {
				class += "~"
			}
			ovh := "-"
			if r.RecorderOverhead > 0 {
				ovh = fmt.Sprintf("%.2fx", r.RecorderOverhead)
			}
			out += fmt.Sprintf(" %-18s %8s", class, ovh)
		}
		if cuts {
			lat := "-"
			if r.Cuts > 0 {
				lat = (time.Duration(r.CutP99ns) * time.Nanosecond).String()
			}
			out += fmt.Sprintf(" %8d %12s", r.Cuts, lat)
		}
		out += "\n"
	}
	return out
}
