package workload

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"livetm/internal/engine"
)

func TestMatrixShape(t *testing.T) {
	procs := []int{2, 4}
	specs := Matrix(procs)
	want := len(procs) * len(Mixes()) * len(Contentions()) * 2
	if len(specs) != want {
		t.Fatalf("matrix has %d specs, want %d", len(specs), want)
	}
	names := map[string]bool{}
	for _, s := range specs {
		if names[s.Name] {
			t.Errorf("duplicate spec name %q", s.Name)
		}
		names[s.Name] = true
		if s.Vars < s.Procs {
			t.Errorf("%s: vars %d < procs %d (disjoint partitions impossible)", s.Name, s.Vars, s.Procs)
		}
	}
}

// indexRecorder captures the variable indexes a body touches.
type indexRecorder struct{ touched []int }

func (r *indexRecorder) Read(i int) (int64, error) { r.touched = append(r.touched, i); return 0, nil }
func (r *indexRecorder) Write(i int, v int64) error {
	r.touched = append(r.touched, i)
	return nil
}

// TestDisjointPartitions: a disjoint spec's body must stay inside its
// process's own variable partition, and the operation sequence must
// be a pure function of (proc, round) — idempotent across retries.
func TestDisjointPartitions(t *testing.T) {
	for _, spec := range Matrix([]int{4}) {
		body := spec.Body()
		for proc := 0; proc < spec.Procs; proc++ {
			for round := 0; round < 10; round++ {
				a, b := &indexRecorder{}, &indexRecorder{}
				if err := body(proc, round, a); err != nil {
					t.Fatal(err)
				}
				if err := body(proc, round, b); err != nil {
					t.Fatal(err)
				}
				if len(a.touched) != len(b.touched) {
					t.Fatalf("%s: body not deterministic", spec.Name)
				}
				per := spec.Vars / spec.Procs
				for k, i := range a.touched {
					if i != b.touched[k] {
						t.Fatalf("%s: body not deterministic", spec.Name)
					}
					if i < 0 || i >= spec.Vars {
						t.Fatalf("%s: index %d out of range", spec.Name, i)
					}
					if spec.Sharing == Disjoint && (i < proc*per || i >= (proc+1)*per) {
						t.Fatalf("%s: proc %d touched foreign variable %d", spec.Name, proc, i)
					}
				}
				if want := spec.Mix.Reads + 2*spec.Mix.Writes; len(a.touched) != want {
					t.Fatalf("%s: %d operations, want %d", spec.Name, len(a.touched), want)
				}
			}
		}
	}
}

// TestUndersizedDisjointSpec: a hand-built spec with fewer variables
// than processes must fail with a clean error, not divide by zero.
func TestUndersizedDisjointSpec(t *testing.T) {
	spec := Spec{Name: "bad", Procs: 4, Vars: 2, Mix: Mix{Reads: 1, Writes: 1}, Sharing: Disjoint}
	body := spec.Body()
	rec := &indexRecorder{}
	if err := body(0, 0, rec); err != nil { // in-range process still works
		t.Fatal(err)
	}
	e, ok := engine.Lookup("native-tl2")
	if !ok {
		t.Fatal("native-tl2 not registered")
	}
	_, err := e.Run(engine.RunConfig{Procs: spec.Procs, Vars: spec.Vars, OpsPerProc: 2}, body)
	if err == nil {
		t.Fatal("undersized disjoint spec must surface an error")
	}
}

// TestRunMatrixCrossEngine runs a small matrix on one engine per
// substrate and round-trips the artifact.
func TestRunMatrixCrossEngine(t *testing.T) {
	var engines []engine.Engine
	for _, name := range []string{"sim-tl2", "native-tl2"} {
		e, ok := engine.Lookup(name)
		if !ok {
			t.Fatalf("engine %s not registered", name)
		}
		engines = append(engines, e)
	}
	specs := Matrix([]int{2})
	results, err := RunMatrix(engines, specs, Budget{SimSteps: 400, NativeOps: 30})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(engines)*len(specs) {
		t.Fatalf("got %d cells, want %d", len(results), len(engines)*len(specs))
	}
	for _, r := range results {
		if r.Commits == 0 {
			t.Errorf("%s/%s: no commits", r.Engine, r.Workload)
		}
		if r.Substrate == "native" && r.OpsPerSec == 0 {
			t.Errorf("%s/%s: native cell without ops/sec", r.Engine, r.Workload)
		}
		if r.Substrate == "sim" && r.CommitsPerStep == 0 {
			t.Errorf("%s/%s: sim cell without commits/step", r.Engine, r.Workload)
		}
	}
	if FormatResults(results) == "" {
		t.Error("empty table")
	}

	path := filepath.Join(t.TempDir(), "BENCH_native.json")
	if err := WriteArtifact(path, Budget{SimSteps: 400, NativeOps: 30}, results); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var art Artifact
	if err := json.Unmarshal(data, &art); err != nil {
		t.Fatal(err)
	}
	if art.Schema != ArtifactSchema {
		t.Errorf("schema = %q", art.Schema)
	}
	if len(art.Results) != len(results) {
		t.Errorf("artifact has %d cells, want %d", len(art.Results), len(results))
	}
}

// TestRunMatrixShardSweep sweeps one native engine over shard counts.
// Every cell of a p4 matrix fits both counts, so each spec must
// produce an unsharded baseline and an s4 cell, the s4 cell must carry
// the per-shard cut breakdown, and no cell may flip its opacity
// verdict (a violation would fail the sweep outright).
func TestRunMatrixShardSweep(t *testing.T) {
	e, ok := engine.Lookup("native-tl2")
	if !ok {
		t.Fatal("native-tl2 not registered")
	}
	specs := Matrix([]int{4})
	results, err := RunMatrixOptions([]engine.Engine{e}, specs,
		Budget{NativeOps: 24},
		Options{Check: true, Live: true, QuiesceEvery: 2, Shards: []int{1, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2*len(specs) {
		t.Fatalf("got %d cells, want %d (each spec at s1 and s4)", len(results), 2*len(specs))
	}
	checkedBase := map[string]bool{}
	sharded := 0
	for _, r := range results {
		if r.Shards <= 1 {
			if len(r.PerShard) != 0 {
				t.Errorf("%s: unsharded cell has a per-shard breakdown", r.Workload)
			}
			checkedBase[r.Workload] = r.Checked
			continue
		}
		sharded++
		if r.Shards != 4 {
			t.Errorf("%s: shards = %d, want 4", r.Workload, r.Shards)
		}
		if len(r.PerShard) != 4 {
			t.Errorf("%s: %d per-shard entries, want 4", r.Workload, len(r.PerShard))
		}
		if r.Cuts == 0 {
			t.Errorf("%s: sharded cell took no quiescent cuts", r.Workload)
		}
		var sum uint64
		for k, s := range r.PerShard {
			if s.Shard != k {
				t.Errorf("%s: per-shard entry %d labeled shard %d", r.Workload, k, s.Shard)
			}
			sum += s.Cuts
		}
		if sum != r.Cuts {
			t.Errorf("%s: per-shard cuts sum to %d, total says %d", r.Workload, sum, r.Cuts)
		}
	}
	if sharded != len(specs) {
		t.Errorf("%d sharded cells, want %d", sharded, len(specs))
	}
}

// TestRunMatrixRecordChecked runs the record/check path on both
// substrates: every recording-capable cell must capture a history and
// pass the online monitor's well-formedness and opacity checks.
func TestRunMatrixRecordChecked(t *testing.T) {
	var engines []engine.Engine
	for _, name := range []string{"sim-tl2", "native-tl2", "native-dstm"} {
		e, ok := engine.Lookup(name)
		if !ok {
			t.Fatalf("engine %s not registered", name)
		}
		engines = append(engines, e)
	}
	specs := Matrix([]int{2})
	results, err := RunMatrixOptions(engines, specs,
		Budget{SimSteps: 400, NativeOps: 16},
		Options{Check: true, QuiesceEvery: 2})
	if err != nil {
		t.Fatal(err)
	}
	undecided := 0
	for _, r := range results {
		if !r.Recorded {
			t.Errorf("%s/%s: cell not recorded", r.Engine, r.Workload)
		}
		if !r.Checked {
			undecided++
		}
	}
	// The quiesce barrier plants cuts on native cells and simulated
	// cells quiesce naturally, so the vast majority of cells must be
	// decided, not refused.
	if undecided > len(results)/4 {
		t.Errorf("%d of %d cells undecided", undecided, len(results))
	}
}
