package workload

import (
	"testing"

	"livetm/internal/engine"
	"livetm/internal/monitor"
)

// TestRunMatrixLive: native cells run under the in-process monitor —
// verdicts come from the live checker, every cell carries a liveness
// class, a backoff cap and an overhead ratio — while simulated cells
// ride along unaffected.
func TestRunMatrixLive(t *testing.T) {
	var engines []engine.Engine
	for _, name := range []string{"sim-tl2", "native-tl2", "native-dstm"} {
		e, ok := engine.Lookup(name)
		if !ok {
			t.Fatalf("engine %s not registered", name)
		}
		engines = append(engines, e)
	}
	specs := Matrix([]int{2})
	results, err := RunMatrixOptions(engines, specs,
		Budget{SimSteps: 300, NativeOps: 24},
		Options{Live: true, Check: true, Overhead: true, QuiesceEvery: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.Substrate != "native" {
			if r.Live {
				t.Errorf("%s/%s: simulated cell marked live", r.Engine, r.Workload)
			}
			continue
		}
		if !r.Live {
			t.Errorf("%s/%s: native cell not live", r.Engine, r.Workload)
		}
		if r.LivenessClass == "" {
			t.Errorf("%s/%s: live cell without liveness class", r.Engine, r.Workload)
		}
		if !r.Checked {
			t.Errorf("%s/%s: live cell undecided", r.Engine, r.Workload)
		}
		if r.BackoffCap == 0 {
			t.Errorf("%s/%s: live cell without backoff cap", r.Engine, r.Workload)
		}
		if r.RecorderOverhead <= 0 {
			t.Errorf("%s/%s: overhead ratio missing", r.Engine, r.Workload)
		}
	}
	table := FormatResults(results)
	if table == "" {
		t.Fatal("empty table")
	}
}

// TestLiveBackoffPreservesOpacity is the property check for
// starvation-aware backoff: whatever the feedback loop does to the
// retry schedule, it must never change a correct cell's opacity
// verdict. The hottest cell of the matrix (update mix, hot contention,
// shared variables) runs repeatedly with the bias active and the
// recorded history is re-checked offline with the exact (non-approx)
// checker; both verdicts must be opaque every time. Run with -race.
func TestLiveBackoffPreservesOpacity(t *testing.T) {
	var spec Spec
	for _, s := range Matrix([]int{4}) {
		if s.Mix.Name == "update" && s.Contention.Name == "hot" && s.Sharing == Shared {
			spec = s
			break
		}
	}
	for _, name := range []string{"native-tl2", "native-tinystm"} {
		e, ok := engine.Lookup(name)
		if !ok {
			t.Fatalf("engine %s not registered", name)
		}
		for iter := 0; iter < 3; iter++ {
			st, err := e.Run(engine.RunConfig{
				Procs: spec.Procs, Vars: spec.Vars, OpsPerProc: 25,
				Live: true, Record: true, QuiesceEvery: 2,
			}, spec.Body())
			if err != nil {
				t.Fatalf("%s iter %d: live run failed: %v", name, iter, err)
			}
			if !st.Live.Checked || !st.Live.Opacity.Holds {
				t.Fatalf("%s iter %d: live verdict changed under backoff bias: %+v",
					name, iter, st.Live.Opacity)
			}
			// Offline exact re-check of the same recorded history: the
			// live (possibly approximate) verdict and the exact one must
			// agree wherever the exact checker decides.
			m, err := monitor.New(monitor.Config{SegmentTxns: 48})
			if err != nil {
				t.Fatal(err)
			}
			_ = m.ObserveHistory(st.History)
			rep := m.Report()
			if rep.Checked && !rep.Opacity.Holds {
				t.Fatalf("%s iter %d: offline check found a violation the live monitor missed: %s",
					name, iter, rep.Opacity.Reason)
			}
		}
	}
}
