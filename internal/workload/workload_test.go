package workload

import (
	"testing"

	"livetm/internal/model"
	"livetm/internal/sim"
	"livetm/internal/stm"
	"livetm/internal/stm/dstm"
	"livetm/internal/stm/fgptm"
	"livetm/internal/stm/glock"
	"livetm/internal/stm/ostm"
	"livetm/internal/stm/tiny"
	"livetm/internal/stm/tl2"
)

func factories() map[string]stm.Factory {
	return map[string]stm.Factory{
		"glock": func(n, v int) stm.TM { return glock.New() },
		"tiny":  func(n, v int) stm.TM { return tiny.New() },
		"tl2":   func(n, v int) stm.TM { return tl2.New() },
		"dstm":  func(n, v int) stm.TM { return dstm.New() },
		"ostm":  func(n, v int) stm.TM { return ostm.New() },
		"fgp": func(n, v int) stm.TM {
			tm, err := fgptm.New(n, v)
			if err != nil {
				panic(err)
			}
			return tm
		},
	}
}

func TestAtomicallyCommits(t *testing.T) {
	for name, f := range factories() {
		t.Run(name, func(t *testing.T) {
			tm := f(1, 2)
			env := sim.Background(1)
			attempts := Atomically(tm, env, func(tx *Tx) {
				tx.Write(0, 42)
			})
			if attempts < 1 {
				t.Fatalf("attempts = %d", attempts)
			}
			var got model.Value
			Atomically(tm, env, func(tx *Tx) { got = tx.Read(0) })
			if got != 42 {
				t.Errorf("read back %d, want 42", got)
			}
		})
	}
}

func TestAtomicallyBounded(t *testing.T) {
	tm := tl2.New()
	env := sim.Background(1)
	attempts, ok := AtomicallyBounded(tm, env, 3, func(tx *Tx) {
		tx.Write(0, 1)
	})
	if !ok || attempts != 1 {
		t.Errorf("bounded commit = %d,%v; want 1,true", attempts, ok)
	}
}

func TestTxDeadAfterAbort(t *testing.T) {
	// Force an abort through tiny's encounter lock, then check the
	// handle goes dead rather than issuing more operations.
	tm := tiny.New()
	env1, env2 := sim.Background(1), sim.Background(2)
	if st := tm.Write(env1, 0, 1); st != stm.OK {
		t.Fatal("p1 write")
	}
	tx := &Tx{tm: tm, env: env2}
	_ = tx.Read(0) // aborts: x0 is locked by p1
	if !tx.Aborted() {
		t.Fatal("tx must be aborted")
	}
	if v := tx.Read(1); v != 0 {
		t.Error("reads after abort must return 0")
	}
	tx.Write(1, 9) // must be a no-op
	if st := tm.TryCommit(env1); st != stm.OK {
		t.Fatal("p1 commit")
	}
	v, st := tm.Read(env1, 1)
	if st != stm.OK || v != 0 {
		t.Errorf("x1 = %d,%v; a dead handle must not have written", v, st)
	}
}

func TestIncrement(t *testing.T) {
	tm := dstm.New()
	env := sim.Background(1)
	for i := 0; i < 5; i++ {
		Increment(tm, env, 0)
	}
	var got model.Value
	Atomically(tm, env, func(tx *Tx) { got = tx.Read(0) })
	if got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
}

// TestBankConservation runs concurrent transfers on every TM and
// checks that the total is conserved — the classic opacity-in-action
// workload.
func TestBankConservation(t *testing.T) {
	for name, f := range factories() {
		t.Run(name, func(t *testing.T) {
			tm := f(4, 8)
			setup := sim.Background(4)
			bank := NewBank(tm, setup, 8, 100)
			s := sim.New(sim.NewSeeded(5))
			defer s.Close()
			// Each process performs a bounded number of transfers and
			// exits, so every lock is released before the final audit
			// (an audit concurrent with parked lock holders would spin;
			// TestBankTotalDuringChaos covers the concurrent case).
			for i := 0; i < 3; i++ {
				p := model.Proc(i + 1)
				pi := i
				_ = s.Spawn(p, func(env *sim.Env) {
					state := uint64(pi + 1)
					for n := 0; n < 30; n++ {
						state ^= state << 13
						state ^= state >> 7
						state ^= state << 17
						from := int(state % 8)
						to := int(state / 8 % 8)
						bank.Transfer(env, from, to, 5)
					}
				})
			}
			if steps := s.Run(400000); steps >= 400000 {
				t.Fatal("transfer processes did not finish; the TM wedged")
			}
			if total := bank.Total(setup); total != 800 {
				t.Errorf("total = %d, want 800 (money was created or destroyed)", total)
			}
		})
	}
}

// TestBankTotalDuringChaos interleaves audits with the transfers.
func TestBankTotalDuringChaos(t *testing.T) {
	tm := tl2.New()
	setup := sim.Background(3)
	bank := NewBank(tm, setup, 4, 50)
	s := sim.New(sim.NewSeeded(6))
	defer s.Close()
	_ = s.Spawn(1, func(env *sim.Env) {
		for {
			bank.Transfer(env, 0, 1, 1)
			bank.Transfer(env, 1, 2, 1)
		}
	})
	bad := 0
	_ = s.Spawn(2, func(env *sim.Env) {
		for {
			if bank.Total(env) != 200 {
				bad++
			}
		}
	})
	s.Run(8000)
	if bad != 0 {
		t.Errorf("%d audits observed a non-conserved total", bad)
	}
}
