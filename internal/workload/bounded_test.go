package workload

import (
	"testing"

	"livetm/internal/model"
	"livetm/internal/sim"
	"livetm/internal/stm"
	"livetm/internal/stm/tiny"
)

// TestAtomicallyBoundedExhausts: against a permanently-held encounter
// lock the budget runs out and ok is false.
func TestAtomicallyBoundedExhausts(t *testing.T) {
	tm := tiny.New()
	blocker := sim.Background(1)
	if st := tm.Write(blocker, 0, 9); st != stm.OK {
		t.Fatal("blocker write")
	}
	// p2's transaction conflicts on x0 forever.
	attempts, ok := AtomicallyBounded(tm, sim.Background(2), 5, func(tx *Tx) {
		tx.Write(0, 1)
	})
	if ok {
		t.Fatal("bounded transaction must fail against a held lock")
	}
	if attempts != 5 {
		t.Errorf("attempts = %d, want 5", attempts)
	}
}

// TestTotalBounded covers both outcomes of the bounded audit.
func TestTotalBounded(t *testing.T) {
	tm := tiny.New()
	setup := sim.Background(1)
	bank := NewBank(tm, setup, 3, 10)
	total, ok := bank.TotalBounded(setup, 4)
	if !ok || total != 30 {
		t.Fatalf("TotalBounded = %d,%v; want 30,true", total, ok)
	}
	// A second process wedges account 1 with an encounter lock.
	blocker := sim.Background(2)
	if st := tm.Write(blocker, model.TVar(1), 99); st != stm.OK {
		t.Fatal("blocker write")
	}
	if _, ok := bank.TotalBounded(setup, 4); ok {
		t.Fatal("audit through a held lock must exhaust its budget")
	}
}

// TestBankAccessors covers the small accessors.
func TestBankAccessors(t *testing.T) {
	bank := NewBank(tiny.New(), sim.Background(1), 5, 1)
	if bank.Accounts() != 5 {
		t.Errorf("Accounts = %d", bank.Accounts())
	}
}
