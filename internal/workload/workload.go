// Package workload provides application-level building blocks on top
// of the TM operational interface: a retrying transaction runner
// (`Atomically`) and the synthetic workloads used by the examples and
// the scalability experiment (E21) — a shared counter and a
// transactional bank.
package workload

import (
	"livetm/internal/model"
	"livetm/internal/sim"
	"livetm/internal/stm"
)

// Tx is the per-attempt transaction handle passed to Atomically's
// body. After any operation aborts, the handle is dead: further
// operations are no-ops and the attempt is retried.
type Tx struct {
	tm      stm.TM
	env     *sim.Env
	aborted bool
}

// Read returns the value of x, or 0 after the transaction aborted.
func (t *Tx) Read(x model.TVar) model.Value {
	if t.aborted {
		return 0
	}
	v, st := t.tm.Read(t.env, x)
	if st != stm.OK {
		t.aborted = true
		return 0
	}
	return v
}

// Write writes v to x.
func (t *Tx) Write(x model.TVar, v model.Value) {
	if t.aborted {
		return
	}
	if t.tm.Write(t.env, x, v) != stm.OK {
		t.aborted = true
	}
}

// Aborted reports whether the current attempt has aborted.
func (t *Tx) Aborted() bool { return t.aborted }

// Atomically runs body as a transaction, retrying until it commits,
// and returns the number of attempts (≥ 1). The body must be
// idempotent across retries (it re-reads everything through the
// handle).
func Atomically(tm stm.TM, env *sim.Env, body func(*Tx)) int {
	for attempts := 1; ; attempts++ {
		tx := &Tx{tm: tm, env: env}
		body(tx)
		if tx.aborted {
			continue
		}
		if tm.TryCommit(env) == stm.OK {
			return attempts
		}
	}
}

// AtomicallyBounded is Atomically with an attempt budget; ok is false
// when the budget is exhausted without a commit.
func AtomicallyBounded(tm stm.TM, env *sim.Env, maxAttempts int, body func(*Tx)) (attempts int, ok bool) {
	for attempts = 1; attempts <= maxAttempts; attempts++ {
		tx := &Tx{tm: tm, env: env}
		body(tx)
		if tx.aborted {
			continue
		}
		if tm.TryCommit(env) == stm.OK {
			return attempts, true
		}
	}
	return maxAttempts, false
}

// Increment atomically increments x and returns the attempts used.
func Increment(tm stm.TM, env *sim.Env, x model.TVar) int {
	return Atomically(tm, env, func(tx *Tx) {
		tx.Write(x, tx.Read(x)+1)
	})
}

// Bank is a transactional bank: account i lives in t-variable i.
type Bank struct {
	tm       stm.TM
	accounts int
}

// NewBank creates a bank with n accounts holding initial each,
// funding them in one transaction by process setup's environment.
func NewBank(tm stm.TM, env *sim.Env, n int, initial model.Value) *Bank {
	b := &Bank{tm: tm, accounts: n}
	Atomically(tm, env, func(tx *Tx) {
		for i := 0; i < n; i++ {
			tx.Write(model.TVar(i), initial)
		}
	})
	return b
}

// Accounts returns the number of accounts.
func (b *Bank) Accounts() int { return b.accounts }

// Transfer moves amount from one account to another (overdrafts are
// permitted: the workload exercises the TM, not banking rules).
// It returns the attempts used.
func (b *Bank) Transfer(env *sim.Env, from, to int, amount model.Value) int {
	return Atomically(b.tm, env, func(tx *Tx) {
		tx.Write(model.TVar(from), tx.Read(model.TVar(from))-amount)
		tx.Write(model.TVar(to), tx.Read(model.TVar(to))+amount)
	})
}

// Total reads all accounts in one transaction and returns their sum —
// by opacity it must always equal accounts × initial.
func (b *Bank) Total(env *sim.Env) model.Value {
	var total model.Value
	Atomically(b.tm, env, func(tx *Tx) {
		total = 0
		for i := 0; i < b.accounts; i++ {
			total += tx.Read(model.TVar(i))
		}
	})
	return total
}

// TotalBounded is Total with an attempt budget, for auditing a bank
// whose other users may be wedged holding locks: ok is false when no
// audit transaction could commit within the budget.
func (b *Bank) TotalBounded(env *sim.Env, maxAttempts int) (total model.Value, ok bool) {
	_, ok = AtomicallyBounded(b.tm, env, maxAttempts, func(tx *Tx) {
		total = 0
		for i := 0; i < b.accounts; i++ {
			total += tx.Read(model.TVar(i))
		}
	})
	return total, ok
}
