package workload_test

import (
	"fmt"

	"livetm/internal/model"
	"livetm/internal/sim"
	"livetm/internal/stm/tl2"
	"livetm/internal/workload"
)

// Atomically retries the body until it commits.
func ExampleAtomically() {
	tm := tl2.New()
	env := sim.Background(1)
	attempts := workload.Atomically(tm, env, func(tx *workload.Tx) {
		v := tx.Read(0)
		tx.Write(0, v+10)
	})
	var got model.Value
	workload.Atomically(tm, env, func(tx *workload.Tx) { got = tx.Read(0) })
	fmt.Println(attempts, got)
	// Output:
	// 1 10
}

// A transactional bank conserves its total under any TM.
func ExampleBank() {
	tm := tl2.New()
	env := sim.Background(1)
	bank := workload.NewBank(tm, env, 4, 100)
	bank.Transfer(env, 0, 1, 30)
	bank.Transfer(env, 1, 2, 50)
	fmt.Println(bank.Total(env))
	// Output:
	// 400
}
