package sim

import (
	"testing"

	"livetm/internal/model"
)

func traceRun(t *testing.T, policy Policy) []int {
	t.Helper()
	s := New(policy)
	defer s.Close()
	var trace []int
	for p := model.Proc(1); p <= 3; p++ {
		_ = s.Spawn(p, func(env *Env) {
			for i := 0; i < 6; i++ {
				trace = append(trace, int(env.Proc()))
				env.Yield()
			}
		})
	}
	s.Run(1000)
	return trace
}

func TestRecordAndReplay(t *testing.T) {
	rec := Record(NewSeeded(99))
	original := traceRun(t, rec)
	replayed := traceRun(t, rec.Replay())
	if len(original) != len(replayed) {
		t.Fatalf("lengths differ: %d vs %d", len(original), len(replayed))
	}
	for i := range original {
		if original[i] != replayed[i] {
			t.Fatalf("replay diverges at step %d: %v vs %v", i, original, replayed)
		}
	}
}

func TestRecordDefaultsToRoundRobin(t *testing.T) {
	rec := Record(nil)
	_ = traceRun(t, rec)
	if len(rec.Choices()) == 0 {
		t.Error("choices must be recorded")
	}
}

func TestChoicesIsCopy(t *testing.T) {
	rec := Record(nil)
	_ = traceRun(t, rec)
	c := rec.Choices()
	c[0] = 99
	if rec.Choices()[0] == 99 {
		t.Error("Choices must return a copy")
	}
}
