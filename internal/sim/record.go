package sim

import "livetm/internal/model"

// Recording wraps a policy and records every scheduling choice, so a
// run can be replayed exactly with a Fixed policy — useful for
// shrinking and for attaching a failing schedule to a bug report.
type Recording struct {
	inner   Policy
	choices []model.Proc
}

// Record wraps the policy (nil means round-robin).
func Record(p Policy) *Recording {
	if p == nil {
		p = &RoundRobin{}
	}
	return &Recording{inner: p}
}

// Next implements Policy.
func (r *Recording) Next(runnable []model.Proc, step int) model.Proc {
	p := r.inner.Next(runnable, step)
	r.choices = append(r.choices, p)
	return p
}

// Choices returns a copy of the recorded schedule.
func (r *Recording) Choices() []model.Proc {
	return append([]model.Proc(nil), r.choices...)
}

// Replay returns a policy that replays the recorded schedule.
func (r *Recording) Replay() Policy {
	return &Fixed{Schedule: r.Choices()}
}
