package sim

import (
	"testing"

	"livetm/internal/model"
)

func TestSuspendPausesAndResumes(t *testing.T) {
	s := New(&RoundRobin{})
	defer s.Close()
	counts := map[model.Proc]int{}
	for p := model.Proc(1); p <= 2; p++ {
		p := p
		_ = s.Spawn(p, func(env *Env) {
			for {
				counts[p]++
				env.Yield()
			}
		})
	}
	s.Run(10)
	s.Suspend(1, 20)
	if !s.Suspended(1) {
		t.Fatal("p1 must be suspended")
	}
	at := counts[1]
	s.Run(20)
	if counts[1] != at {
		t.Errorf("suspended p1 advanced from %d to %d", at, counts[1])
	}
	if s.Suspended(1) {
		t.Error("suspension must have expired")
	}
	s.Run(10)
	if counts[1] == at {
		t.Error("p1 must resume after the suspension expires")
	}
}

func TestSuspendAllIsIdleTick(t *testing.T) {
	s := New(nil)
	defer s.Close()
	_ = s.Spawn(1, func(env *Env) {
		for {
			env.Yield()
		}
	})
	s.Run(2)
	s.Suspend(1, 5)
	n := s.Run(100)
	// 5 idle ticks pass, then p1 resumes and burns the rest.
	if n != 100 {
		t.Errorf("Run consumed %d steps, want 100 (idle ticks + resumed process)", n)
	}
	if s.Suspended(1) {
		t.Error("suspension must be over")
	}
}

func TestSuspendUnknownOrZeroIsNoop(t *testing.T) {
	s := New(nil)
	defer s.Close()
	s.Suspend(9, 10)
	if s.Suspended(9) {
		t.Error("unknown process cannot be suspended")
	}
	_ = s.Spawn(1, func(env *Env) { env.Yield() })
	s.Suspend(1, 0)
	if s.Suspended(1) {
		t.Error("zero-length suspension is a no-op")
	}
}
