// Package sim is the asynchronous shared-memory substrate of the
// reproduction: a deterministic cooperative scheduler in which each
// process runs as a goroutine but exactly one process advances at a
// time, between explicit yield points.
//
// Yield points model the base-object accesses of the paper's model
// (§2.1): the scheduler may switch processes, and a process may crash,
// at any yield point — including in the middle of a TM operation while
// the operation holds locks. This reproduces the paper's asynchronous
// crash semantics (a crashed process holds whatever it holds forever)
// without real wall-clock hangs or data races: because only one
// process runs at a time and control transfers through channels, the
// TM implementations can use ordinary Go data structures.
//
// Determinism: given the same policy (and seed), spawn order, and
// process bodies, runs are bit-for-bit reproducible.
package sim

import (
	"fmt"
	"sort"

	"livetm/internal/model"
)

// killToken is panicked inside Yield to unwind a process goroutine
// when the scheduler shuts down. It never escapes the package: the
// spawn wrapper recovers it. (Panic as control flow is confined to
// this single, documented mechanism.)
type killToken struct{}

// Env is the execution environment handed to a process body. TM
// implementations call Yield at every base-object access; the
// scheduler uses these points for preemption and crashes.
//
// A nil-scheduler Env (from Background) makes Yield a no-op so that TM
// implementations can also be used directly, single-threaded.
type Env struct {
	p model.Proc
	s *Scheduler
}

// Background returns an Env not attached to any scheduler: Yield is a
// no-op. Use it to run TM operations directly from a single goroutine
// (examples, quick tests).
func Background(p model.Proc) *Env { return &Env{p: p} }

// Proc returns the process this environment belongs to.
func (e *Env) Proc() model.Proc { return e.p }

// Yield hands control back to the scheduler; the process resumes when
// scheduled next. Inside a scheduler run this is a potential
// preemption and crash point.
func (e *Env) Yield() {
	if e.s == nil {
		return
	}
	ps := e.s.procs[e.p]
	e.s.events <- event{p: e.p, kind: evYield}
	<-ps.resume
	if ps.killed {
		panic(killToken{})
	}
}

// Policy picks which runnable process advances next.
type Policy interface {
	// Next returns the process to run; runnable is non-empty and
	// sorted. step is the global step counter.
	Next(runnable []model.Proc, step int) model.Proc
}

// RoundRobin schedules runnable processes in rotating order.
type RoundRobin struct{ last int }

// Next implements Policy.
func (r *RoundRobin) Next(runnable []model.Proc, _ int) model.Proc {
	r.last++
	return runnable[r.last%len(runnable)]
}

// Seeded schedules runnable processes pseudo-randomly but
// deterministically from a seed, using a simple xorshift generator (no
// dependence on math/rand ordering across Go versions).
type Seeded struct{ state uint64 }

// NewSeeded returns a Seeded policy; seed 0 is replaced by 1.
func NewSeeded(seed uint64) *Seeded {
	if seed == 0 {
		seed = 1
	}
	return &Seeded{state: seed}
}

// Next implements Policy.
func (s *Seeded) Next(runnable []model.Proc, _ int) model.Proc {
	s.state ^= s.state << 13
	s.state ^= s.state >> 7
	s.state ^= s.state << 17
	return runnable[s.state%uint64(len(runnable))]
}

// Fixed replays an explicit schedule of process identifiers; when the
// scheduled process is not runnable (or the schedule is exhausted) it
// falls back to the first runnable process.
type Fixed struct {
	Schedule []model.Proc
	pos      int
}

// Next implements Policy.
func (f *Fixed) Next(runnable []model.Proc, _ int) model.Proc {
	for f.pos < len(f.Schedule) {
		p := f.Schedule[f.pos]
		f.pos++
		for _, r := range runnable {
			if r == p {
				return p
			}
		}
	}
	return runnable[0]
}

type evKind int

const (
	evYield evKind = iota + 1
	evDone
)

type event struct {
	p    model.Proc
	kind evKind
}

type procState struct {
	resume      chan struct{}
	started     bool
	done        bool
	crashed     bool
	killed      bool
	parked      bool // voluntarily descheduled until Unpark
	suspendedTo int  // not scheduled until the global step counter reaches this
}

// Scheduler coordinates the process goroutines. It is not safe for
// concurrent use: drive it from a single goroutine.
type Scheduler struct {
	policy Policy
	procs  map[model.Proc]*procState
	order  []model.Proc
	events chan event
	steps  int
	closed bool
}

// New returns a scheduler with the given policy (nil means round-
// robin).
func New(policy Policy) *Scheduler {
	if policy == nil {
		policy = &RoundRobin{}
	}
	return &Scheduler{
		policy: policy,
		procs:  make(map[model.Proc]*procState),
		events: make(chan event),
	}
}

// Steps returns the number of scheduling steps taken so far.
func (s *Scheduler) Steps() int { return s.steps }

// Spawn registers process p with the given body. The body starts
// suspended; it first runs when the scheduler picks it. Spawning after
// Close or with a duplicate identifier returns an error.
func (s *Scheduler) Spawn(p model.Proc, body func(*Env)) error {
	if s.closed {
		return fmt.Errorf("sim: scheduler is closed")
	}
	if _, dup := s.procs[p]; dup {
		return fmt.Errorf("sim: process %d already spawned", p)
	}
	ps := &procState{resume: make(chan struct{})}
	s.procs[p] = ps
	s.order = append(s.order, p)
	sort.Slice(s.order, func(i, j int) bool { return s.order[i] < s.order[j] })
	env := &Env{p: p, s: s}
	go func() {
		<-ps.resume
		if ps.killed {
			s.events <- event{p: p, kind: evDone}
			return
		}
		defer func() {
			if r := recover(); r != nil {
				if _, isKill := r.(killToken); !isKill {
					panic(r)
				}
			}
			s.events <- event{p: p, kind: evDone}
		}()
		body(env)
	}()
	return nil
}

// Crash marks p crashed: it will never be scheduled again, and
// whatever it holds stays held. Crashing an unknown, finished, or
// already crashed process is a no-op.
func (s *Scheduler) Crash(p model.Proc) {
	if ps, ok := s.procs[p]; ok {
		ps.crashed = true
	}
}

// Crashed reports whether p has been crashed.
func (s *Scheduler) Crashed(p model.Proc) bool {
	ps, ok := s.procs[p]
	return ok && ps.crashed
}

// Suspend models a transient stall (§1.2: preemption, page fault,
// I/O): p is not scheduled for the next `steps` global steps and then
// becomes runnable again. Unlike a crash, whatever p holds it will
// eventually release — the distinction the paper draws between slow
// and crashed processes, which the TM itself can never observe.
func (s *Scheduler) Suspend(p model.Proc, steps int) {
	if ps, ok := s.procs[p]; ok && steps > 0 {
		ps.suspendedTo = s.steps + steps
	}
}

// Suspended reports whether p is currently suspended.
func (s *Scheduler) Suspended(p model.Proc) bool {
	ps, ok := s.procs[p]
	return ok && s.steps < ps.suspendedTo
}

func (s *Scheduler) runnable() []model.Proc {
	var out []model.Proc
	for _, p := range s.order {
		ps := s.procs[p]
		if !ps.done && !ps.crashed && !ps.parked && s.steps >= ps.suspendedTo {
			out = append(out, p)
		}
	}
	return out
}

// Park voluntarily deschedules p until Unpark: unlike Suspend it is
// event-driven, not timed, so an idle process (a session worker with
// an empty queue) consumes no steps at all while it waits for work —
// matching a process that simply is not there. Parking an unknown or
// finished process is a no-op. A process parks itself by calling Park
// and then yielding; the driver unparks it when there is work.
func (s *Scheduler) Park(p model.Proc) {
	if ps, ok := s.procs[p]; ok {
		ps.parked = true
	}
}

// Unpark makes a parked process schedulable again (no-op otherwise).
func (s *Scheduler) Unpark(p model.Proc) {
	if ps, ok := s.procs[p]; ok {
		ps.parked = false
	}
}

// Runnable returns the processes currently eligible for scheduling
// (spawned, not finished, not crashed), sorted. Systematic schedule
// exploration uses it to branch on the frontier.
func (s *Scheduler) Runnable() []model.Proc {
	if s.closed {
		return nil
	}
	return s.runnable()
}

// Step advances one process by one yield-to-yield slice. It returns
// false when no process is runnable (all finished or crashed). When
// every live process is merely suspended, the step is an idle tick:
// time passes and suspensions expire.
func (s *Scheduler) Step() bool {
	if s.closed {
		return false
	}
	runnable := s.runnable()
	if len(runnable) == 0 {
		for _, p := range s.order {
			ps := s.procs[p]
			if !ps.done && !ps.crashed && s.steps < ps.suspendedTo {
				s.steps++ // idle tick: only suspended processes remain
				return true
			}
		}
		return false
	}
	p := s.policy.Next(runnable, s.steps)
	s.steps++
	ps := s.procs[p]
	ps.started = true
	ps.resume <- struct{}{}
	ev := <-s.events
	if ev.kind == evDone {
		s.procs[ev.p].done = true
	}
	return true
}

// Run calls Step until no process is runnable or maxSteps steps have
// been taken. It returns the number of steps executed in this call.
func (s *Scheduler) Run(maxSteps int) int {
	n := 0
	for n < maxSteps && s.Step() {
		n++
	}
	return n
}

// Close terminates every process goroutine still parked at a yield
// point (including crashed ones) so that no goroutines leak. The
// scheduler cannot be used afterwards.
func (s *Scheduler) Close() {
	if s.closed {
		return
	}
	s.closed = true
	for _, p := range s.order {
		ps := s.procs[p]
		if ps.done {
			continue
		}
		ps.killed = true
		ps.resume <- struct{}{}
		ev := <-s.events
		s.procs[ev.p].done = true
	}
}
