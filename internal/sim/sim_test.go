package sim

import (
	"testing"

	"livetm/internal/model"
)

func TestBackgroundYieldIsNoop(t *testing.T) {
	env := Background(1)
	env.Yield() // must not block or panic
	if env.Proc() != 1 {
		t.Errorf("Proc() = %d, want 1", env.Proc())
	}
}

func TestRoundRobinDeterministic(t *testing.T) {
	run := func() []int {
		s := New(&RoundRobin{})
		defer s.Close()
		var trace []int
		for p := model.Proc(1); p <= 3; p++ {
			p := p
			if err := s.Spawn(p, func(env *Env) {
				for i := 0; i < 4; i++ {
					trace = append(trace, int(env.Proc()))
					env.Yield()
				}
			}); err != nil {
				t.Fatal(err)
			}
		}
		s.Run(1000)
		return trace
	}
	a, b := run(), run()
	if len(a) != 12 {
		t.Fatalf("trace length = %d, want 12", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at %d: %v vs %v", i, a, b)
		}
	}
}

func TestSeededDeterministic(t *testing.T) {
	run := func(seed uint64) []int {
		s := New(NewSeeded(seed))
		defer s.Close()
		var trace []int
		for p := model.Proc(1); p <= 3; p++ {
			p := p
			_ = s.Spawn(p, func(env *Env) {
				for i := 0; i < 5; i++ {
					trace = append(trace, int(env.Proc()))
					env.Yield()
				}
			})
		}
		s.Run(1000)
		return trace
	}
	a, b := run(42), run(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed must give the same schedule")
		}
	}
	c := run(43)
	same := len(a) == len(c)
	if same {
		diff := false
		for i := range a {
			if a[i] != c[i] {
				diff = true
				break
			}
		}
		if !diff {
			t.Log("seeds 42 and 43 coincide (unlikely but not an error)")
		}
	}
}

func TestFixedSchedule(t *testing.T) {
	s := New(&Fixed{Schedule: []model.Proc{2, 2, 1, 2}})
	defer s.Close()
	var trace []int
	body := func(env *Env) {
		for i := 0; i < 3; i++ {
			trace = append(trace, int(env.Proc()))
			env.Yield()
		}
	}
	_ = s.Spawn(1, body)
	_ = s.Spawn(2, body)
	s.Run(4)
	want := []int{2, 2, 1, 2}
	for i, w := range want {
		if trace[i] != w {
			t.Fatalf("trace = %v, want prefix %v", trace, want)
		}
	}
}

func TestCrashStopsScheduling(t *testing.T) {
	s := New(&RoundRobin{})
	defer s.Close()
	counts := map[model.Proc]int{}
	for p := model.Proc(1); p <= 2; p++ {
		p := p
		_ = s.Spawn(p, func(env *Env) {
			for {
				counts[env.Proc()]++
				env.Yield()
			}
		})
	}
	s.Run(10)
	before := counts[1]
	s.Crash(1)
	if !s.Crashed(1) {
		t.Error("Crashed(1) must be true")
	}
	s.Run(10)
	if counts[1] != before {
		t.Errorf("crashed process advanced from %d to %d", before, counts[1])
	}
	if counts[2] < 10 {
		t.Errorf("p2 should keep running after p1's crash, got %d", counts[2])
	}
}

func TestCrashUnknownIsNoop(t *testing.T) {
	s := New(nil)
	defer s.Close()
	s.Crash(99)
	if s.Crashed(99) {
		t.Error("unknown process must not be reported crashed")
	}
}

func TestRunStopsWhenAllDone(t *testing.T) {
	s := New(nil)
	defer s.Close()
	_ = s.Spawn(1, func(env *Env) {
		env.Yield()
	})
	n := s.Run(100)
	if n == 0 || n > 3 {
		t.Errorf("steps = %d, want a small positive count", n)
	}
	if s.Step() {
		t.Error("Step after completion must return false")
	}
}

func TestSpawnValidation(t *testing.T) {
	s := New(nil)
	if err := s.Spawn(1, func(*Env) {}); err != nil {
		t.Fatal(err)
	}
	if err := s.Spawn(1, func(*Env) {}); err == nil {
		t.Error("duplicate spawn must fail")
	}
	s.Close()
	if err := s.Spawn(2, func(*Env) {}); err == nil {
		t.Error("spawn after Close must fail")
	}
}

func TestCloseKillsParkedProcesses(t *testing.T) {
	s := New(nil)
	cleanedUp := false
	_ = s.Spawn(1, func(env *Env) {
		defer func() { cleanedUp = true }()
		for {
			env.Yield()
		}
	})
	s.Run(5)
	s.Close()
	if !cleanedUp {
		t.Error("deferred cleanup in the process body must run on Close")
	}
	if s.Step() {
		t.Error("Step after Close must return false")
	}
}

func TestCloseKillsNeverStartedProcesses(t *testing.T) {
	s := New(&Fixed{Schedule: []model.Proc{1, 1, 1}})
	ran2 := false
	_ = s.Spawn(1, func(env *Env) {
		for i := 0; i < 10; i++ {
			env.Yield()
		}
	})
	_ = s.Spawn(2, func(env *Env) { ran2 = true })
	s.Run(2)
	s.Close()
	if ran2 {
		t.Error("process killed before its first slice must not run its body")
	}
}

func TestCloseIdempotent(t *testing.T) {
	s := New(nil)
	_ = s.Spawn(1, func(env *Env) { env.Yield() })
	s.Close()
	s.Close() // must not panic or deadlock
}

// TestMutualExclusionInvariant checks the core guarantee the STM
// implementations rely on: no two process slices overlap, so a
// read-modify-write between yields is atomic.
func TestMutualExclusionInvariant(t *testing.T) {
	s := New(NewSeeded(9))
	defer s.Close()
	inside := 0
	violations := 0
	for p := model.Proc(1); p <= 4; p++ {
		_ = s.Spawn(p, func(env *Env) {
			for i := 0; i < 50; i++ {
				inside++
				if inside != 1 {
					violations++
				}
				inside--
				env.Yield()
			}
		})
	}
	s.Run(10000)
	if violations != 0 {
		t.Errorf("%d mutual-exclusion violations", violations)
	}
}

func TestStepsCounter(t *testing.T) {
	s := New(nil)
	defer s.Close()
	_ = s.Spawn(1, func(env *Env) {
		for i := 0; i < 5; i++ {
			env.Yield()
		}
	})
	s.Run(3)
	if s.Steps() != 3 {
		t.Errorf("Steps() = %d, want 3", s.Steps())
	}
}
