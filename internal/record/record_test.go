package record

import (
	"sync"
	"testing"
	"time"

	"livetm/internal/model"
	"livetm/internal/native"
)

var _ native.Observer = (*ProcLog)(nil)

// script replays one committed increment transaction through a log.
func script(l *ProcLog, x int, v int64) {
	l.ReadInv(x)
	l.ReadReturn(x, v, false)
	l.WriteInv(x, v+1)
	l.WriteReturn(x, v+1, false)
	l.TryCommitInv()
	l.TryCommitReturn(true)
}

func TestSingleProcHistory(t *testing.T) {
	r := New(1, 0)
	l := r.Log(1)
	script(l, 0, 0)
	l.ReadInv(1)
	l.ReadReturn(1, 0, true) // aborted read
	l.Abandon()              // no open transaction: must be a no-op
	h := r.History()
	if err := model.CheckWellFormed(h); err != nil {
		t.Fatalf("malformed: %v\n%s", err, h)
	}
	want := model.History{
		model.Read(1, 0), model.ValueResp(1, 0),
		model.Write(1, 0, 1), model.OK(1),
		model.TryCommit(1), model.Commit(1),
		model.Read(1, 1), model.Abort(1),
	}
	if h.String() != want.String() {
		t.Fatalf("history = %s, want %s", h, want)
	}
	if r.Truncated() {
		t.Fatal("nothing was dropped")
	}
}

func TestAbandonCompletesOpenTransaction(t *testing.T) {
	r := New(1, 0)
	l := r.Log(1)
	l.WriteInv(0, 5)
	l.WriteReturn(0, 5, false)
	l.Abandon()
	h := r.History()
	if err := model.CheckWellFormed(h); err != nil {
		t.Fatalf("malformed: %v", err)
	}
	txns, err := model.Transactions(h)
	if err != nil {
		t.Fatal(err)
	}
	if len(txns) != 1 || txns[0].Status != model.Aborted {
		t.Fatalf("transactions = %v", txns)
	}
}

// TestMergePreservesGlobalOrder: events logged from concurrent
// goroutines drain into one history ordered by the shared sequence
// counter, with each process's subsequence intact. Run with -race.
func TestMergePreservesGlobalOrder(t *testing.T) {
	const procs, rounds = 4, 200
	r := New(procs, 16)
	var wg sync.WaitGroup
	for p := 1; p <= procs; p++ {
		l := r.Log(model.Proc(p))
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				script(l, 0, int64(i))
			}
		}()
	}
	wg.Wait()
	h := r.History()
	if want := procs * rounds * 6; len(h) != want {
		t.Fatalf("events = %d, want %d", len(h), want)
	}
	if err := model.CheckWellFormed(h); err != nil {
		t.Fatalf("malformed: %v", err)
	}
	for p := 1; p <= procs; p++ {
		proj := h.Projection(model.Proc(p))
		if len(proj) != rounds*6 {
			t.Fatalf("proc %d: %d events, want %d", p, len(proj), rounds*6)
		}
		// Per-process order must be exactly the logged order.
		for i, s := range r.Log(model.Proc(p)).all() {
			if proj[i] != s.ev {
				t.Fatalf("proc %d event %d reordered: %s vs %s", p, i, proj[i], s.ev)
			}
		}
	}
}

// TestTruncation: hitting the cap stops the log at an event boundary
// and the drained history stays well-formed.
func TestTruncation(t *testing.T) {
	r := New(1, 0)
	l := r.Log(1)
	l.max = 7 // truncate mid-transaction, right after an invocation
	script(l, 0, 0)
	script(l, 0, 1)
	if !r.Truncated() {
		t.Fatal("cap was hit but Truncated is false")
	}
	h := r.History()
	if len(h) != 7 {
		t.Fatalf("events = %d, want 7", len(h))
	}
	if err := model.CheckWellFormed(h); err != nil {
		t.Fatalf("truncated history malformed: %v\n%s", err, h)
	}
}

// drain restores the recorded total order from the stream's slightly
// reordered arrivals by sequence number.
func drain(stream <-chan []Streamed) model.History {
	pending := make(map[uint64]model.Event)
	var h model.History
	next := uint64(1)
	for batch := range stream {
		for _, s := range batch {
			pending[s.Seq] = s.Ev
		}
		for {
			ev, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			next++
			h = append(h, ev)
		}
	}
	return h
}

// TestStreamMatchesHistory: the streamed events, reordered by
// sequence number, are exactly the drained history. Run with -race.
func TestStreamMatchesHistory(t *testing.T) {
	const procs, rounds = 4, 300
	r := NewWithOptions(procs, Options{CapacityHint: 16, StreamCapacity: 64})
	var streamed model.History
	got := make(chan model.History, 1)
	go func() { got <- drain(r.Stream()) }()
	var wg sync.WaitGroup
	for p := 1; p <= procs; p++ {
		l := r.Log(model.Proc(p))
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				script(l, 0, int64(i))
			}
		}()
	}
	wg.Wait()
	r.CloseStream()
	streamed = <-got
	h := r.History()
	if len(streamed) != len(h) {
		t.Fatalf("streamed %d events, drained %d", len(streamed), len(h))
	}
	for i := range h {
		if streamed[i] != h[i] {
			t.Fatalf("event %d differs: streamed %s, drained %s", i, streamed[i], h[i])
		}
	}
	if err := model.CheckWellFormed(streamed); err != nil {
		t.Fatalf("streamed history malformed: %v", err)
	}
}

// TestDropStreamedCapsChunks: in drop mode each process recycles one
// ring chunk, so allocation stays capped no matter how many events
// the run records, and History returns nil (the stream was the
// record).
func TestDropStreamedCapsChunks(t *testing.T) {
	const procs = 2
	r := NewWithOptions(procs, Options{CapacityHint: 8, StreamCapacity: 32, DropStreamed: true})
	done := make(chan int, 1)
	go func() {
		n := 0
		for batch := range r.Stream() {
			n += len(batch)
		}
		done <- n
	}()
	var wg sync.WaitGroup
	const rounds = 10000 // far beyond one chunk per process
	for p := 1; p <= procs; p++ {
		l := r.Log(model.Proc(p))
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				script(l, 0, int64(i))
			}
		}()
	}
	wg.Wait()
	r.CloseStream()
	if n := <-done; n != procs*rounds*6 {
		t.Fatalf("streamed %d events, want %d", n, procs*rounds*6)
	}
	if got := r.Chunks(); got > procs {
		t.Fatalf("drop mode allocated %d chunks, want <= %d (one ring chunk per process)", got, procs)
	}
	if r.Events() != procs*rounds*6 {
		t.Fatalf("events = %d, want %d", r.Events(), procs*rounds*6)
	}
	if h := r.History(); h != nil {
		t.Fatalf("drop mode retained %d events", len(h))
	}
}

// TestRetainedChunksLinear: retained mode allocates chunks linearly in
// the event count (no doubling waste) and drains the full history.
func TestRetainedChunksLinear(t *testing.T) {
	r := NewWithOptions(1, Options{CapacityHint: 8})
	l := r.Log(1)
	const rounds = 5000
	for i := 0; i < rounds; i++ {
		script(l, 0, int64(i))
	}
	events := rounds * 6
	want := 1 + (events-8+chunkEvents-1)/chunkEvents // first hint-sized chunk, then full chunks
	if got := r.Chunks(); got != want {
		t.Fatalf("chunks = %d, want %d", got, want)
	}
	h := r.History()
	if len(h) != events {
		t.Fatalf("drained %d events, want %d", len(h), events)
	}
	if err := model.CheckWellFormed(h); err != nil {
		t.Fatalf("malformed: %v", err)
	}
}

// TestStreamStopUnblocks: a publisher blocked on a full stream whose
// consumer departed is released by the stop signal and keeps
// recording locally.
func TestStreamStopUnblocks(t *testing.T) {
	stop := make(chan struct{})
	r := NewWithOptions(1, Options{CapacityHint: 8, StreamCapacity: 1, Stop: stop})
	l := r.Log(1)
	blocked := make(chan struct{})
	go func() {
		// The first transaction's batch fills the 1-slot channel, the
		// second's flush blocks — nobody consumes.
		script(l, 0, 0)
		script(l, 0, 1)
		close(blocked)
	}()
	select {
	case <-blocked:
		t.Fatal("publisher was not blocked by the full stream")
	case <-time.After(50 * time.Millisecond):
	}
	close(stop)
	select {
	case <-blocked:
	case <-time.After(10 * time.Second):
		t.Fatal("stop did not unblock the publisher")
	}
	// Local recording continued past the muted stream.
	if got := r.Events(); got != 12 {
		t.Fatalf("events = %d, want 12", got)
	}
	if err := model.CheckWellFormed(r.History()); err != nil {
		t.Fatalf("malformed: %v", err)
	}
}
