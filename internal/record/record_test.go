package record

import (
	"sync"
	"testing"

	"livetm/internal/model"
	"livetm/internal/native"
)

var _ native.Observer = (*ProcLog)(nil)

// script replays one committed increment transaction through a log.
func script(l *ProcLog, x int, v int64) {
	l.ReadInv(x)
	l.ReadReturn(x, v, false)
	l.WriteInv(x, v+1)
	l.WriteReturn(x, v+1, false)
	l.TryCommitInv()
	l.TryCommitReturn(true)
}

func TestSingleProcHistory(t *testing.T) {
	r := New(1, 0)
	l := r.Log(1)
	script(l, 0, 0)
	l.ReadInv(1)
	l.ReadReturn(1, 0, true) // aborted read
	l.Abandon()              // no open transaction: must be a no-op
	h := r.History()
	if err := model.CheckWellFormed(h); err != nil {
		t.Fatalf("malformed: %v\n%s", err, h)
	}
	want := model.History{
		model.Read(1, 0), model.ValueResp(1, 0),
		model.Write(1, 0, 1), model.OK(1),
		model.TryCommit(1), model.Commit(1),
		model.Read(1, 1), model.Abort(1),
	}
	if h.String() != want.String() {
		t.Fatalf("history = %s, want %s", h, want)
	}
	if r.Truncated() {
		t.Fatal("nothing was dropped")
	}
}

func TestAbandonCompletesOpenTransaction(t *testing.T) {
	r := New(1, 0)
	l := r.Log(1)
	l.WriteInv(0, 5)
	l.WriteReturn(0, 5, false)
	l.Abandon()
	h := r.History()
	if err := model.CheckWellFormed(h); err != nil {
		t.Fatalf("malformed: %v", err)
	}
	txns, err := model.Transactions(h)
	if err != nil {
		t.Fatal(err)
	}
	if len(txns) != 1 || txns[0].Status != model.Aborted {
		t.Fatalf("transactions = %v", txns)
	}
}

// TestMergePreservesGlobalOrder: events logged from concurrent
// goroutines drain into one history ordered by the shared sequence
// counter, with each process's subsequence intact. Run with -race.
func TestMergePreservesGlobalOrder(t *testing.T) {
	const procs, rounds = 4, 200
	r := New(procs, 16)
	var wg sync.WaitGroup
	for p := 1; p <= procs; p++ {
		l := r.Log(model.Proc(p))
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				script(l, 0, int64(i))
			}
		}()
	}
	wg.Wait()
	h := r.History()
	if want := procs * rounds * 6; len(h) != want {
		t.Fatalf("events = %d, want %d", len(h), want)
	}
	if err := model.CheckWellFormed(h); err != nil {
		t.Fatalf("malformed: %v", err)
	}
	for p := 1; p <= procs; p++ {
		proj := h.Projection(model.Proc(p))
		if len(proj) != rounds*6 {
			t.Fatalf("proc %d: %d events, want %d", p, len(proj), rounds*6)
		}
		// Per-process order must be exactly the logged order.
		for i, s := range r.Log(model.Proc(p)).buf {
			if proj[i] != s.ev {
				t.Fatalf("proc %d event %d reordered: %s vs %s", p, i, proj[i], s.ev)
			}
		}
	}
}

// TestTruncation: hitting the cap stops the log at an event boundary
// and the drained history stays well-formed.
func TestTruncation(t *testing.T) {
	r := New(1, 0)
	l := r.Log(1)
	l.max = 7 // truncate mid-transaction, right after an invocation
	script(l, 0, 0)
	script(l, 0, 1)
	if !r.Truncated() {
		t.Fatal("cap was hit but Truncated is false")
	}
	h := r.History()
	if len(h) != 7 {
		t.Fatalf("events = %d, want 7", len(h))
	}
	if err := model.CheckWellFormed(h); err != nil {
		t.Fatalf("truncated history malformed: %v\n%s", err, h)
	}
}
