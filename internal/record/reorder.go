package record

import "livetm/internal/model"

// resequencerWindow is the reorder window of a Resequencer: a power of
// two larger than any process count plus stream capacity this package's
// consumers use, so the per-event path stays on the ring and the
// overflow map only absorbs the pathological case of a process
// descheduled mid-publish for longer than the whole in-flight window.
const resequencerWindow = 1 << 16

// Resequencer restores the recorder's total order from the live
// stream's per-process batches. Batches from different processes can
// overtake each other between stamping and publishing by at most the
// in-flight window (process count plus the channel's buffered events),
// so a ring indexed by sequence number reorders them without a map on
// the per-event path.
//
// A Resequencer is not safe for concurrent use; feed it from the one
// goroutine that drains the stream.
type Resequencer struct {
	ring     []model.Event
	present  []bool
	overflow map[uint64]model.Event
	next     uint64
}

// NewResequencer creates a resequencer expecting sequence numbers from
// 1 (the recorder's first stamp).
func NewResequencer() *Resequencer {
	return &Resequencer{
		ring:     make([]model.Event, resequencerWindow),
		present:  make([]bool, resequencerWindow),
		overflow: make(map[uint64]model.Event),
		next:     1,
	}
}

// Push absorbs one stream batch and emits every event that is now
// contiguous with the restored order, in sequence order.
func (r *Resequencer) Push(batch []Streamed, emit func(model.Event)) {
	for _, s := range batch {
		if s.Seq >= r.next+resequencerWindow {
			r.overflow[s.Seq] = s.Ev
		} else {
			r.ring[s.Seq%resequencerWindow] = s.Ev
			r.present[s.Seq%resequencerWindow] = true
		}
	}
	for {
		slot := r.next % resequencerWindow
		if !r.present[slot] {
			if ev, ok := r.overflow[r.next]; ok {
				delete(r.overflow, r.next)
				r.ring[slot] = ev
			} else {
				return
			}
		}
		ev := r.ring[slot]
		r.present[slot] = false
		r.next++
		emit(ev)
	}
}

// Pending reports how many events are buffered out of order, waiting
// for an earlier sequence number to arrive.
func (r *Resequencer) Pending() int {
	n := len(r.overflow)
	for _, p := range r.present {
		if p {
			n++
		}
	}
	return n
}
