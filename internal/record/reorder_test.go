package record

import (
	"testing"

	"livetm/internal/model"
)

// TestResequencerRestoresOrder: batches arriving out of order (as
// per-process publishes legally do) come out in sequence order, each
// event exactly once.
func TestResequencerRestoresOrder(t *testing.T) {
	rs := NewResequencer()
	ev := func(seq uint64) Streamed {
		return Streamed{Seq: seq, Ev: model.Read(model.Proc(seq%3+1), model.TVar(seq))}
	}
	var got []uint64
	emit := func(e model.Event) { got = append(got, uint64(e.Var)) }

	rs.Push([]Streamed{ev(3), ev(4)}, emit)
	if len(got) != 0 {
		t.Fatalf("nothing is contiguous yet, emitted %v", got)
	}
	if rs.Pending() != 2 {
		t.Fatalf("pending = %d, want 2", rs.Pending())
	}
	rs.Push([]Streamed{ev(1)}, emit)
	if len(got) != 1 || got[0] != 1 {
		t.Fatalf("after seq 1: %v", got)
	}
	rs.Push([]Streamed{ev(2)}, emit)
	want := []uint64{1, 2, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("got %v want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v want %v", got, want)
		}
	}
	if rs.Pending() != 0 {
		t.Fatalf("pending = %d after full drain", rs.Pending())
	}
}

// TestResequencerOverflow: a sequence number beyond the ring window
// parks in the overflow map and still comes out in order.
func TestResequencerOverflow(t *testing.T) {
	rs := NewResequencer()
	far := uint64(resequencerWindow) + 5
	var got []uint64
	rs.Push([]Streamed{{Seq: far, Ev: model.OK(1)}}, func(model.Event) { got = append(got, far) })
	if len(got) != 0 {
		t.Fatal("overflow event must wait for its predecessors")
	}
	if rs.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", rs.Pending())
	}
	batch := make([]Streamed, 0, far-1)
	for s := uint64(1); s < far; s++ {
		batch = append(batch, Streamed{Seq: s, Ev: model.OK(2)})
	}
	n := 0
	rs.Push(batch, func(model.Event) { n++ })
	if n != int(far) {
		t.Fatalf("emitted %d events, want %d (overflow included)", n, far)
	}
}
