// Package record is the low-overhead history recorder for the native
// (real-concurrency) substrate: it turns the linearization-point
// callbacks of internal/native's Observer hooks into a well-formed
// model.History that the safety and liveness checkers can consume.
//
// The design keeps the hot path process-local. Each process appends
// events to its own pre-allocated buffer — no lock, no cross-process
// cache traffic beyond one shared atomic sequence counter that stamps
// every event with a global order. Invocations are stamped immediately
// before the operation runs and responses immediately after it
// returns, so a stamp-order precedence between two transactions
// implies genuine real-time precedence: the drained history's
// real-time partial order is a subrelation of the true one, which
// keeps the opacity checker sound (it may only see fewer ordering
// constraints, never invented ones).
//
// Draining merges the per-process buffers by sequence number into one
// model.History. Buffers grow beyond their initial capacity without
// cross-process synchronization; a hard per-process cap bounds worst-
// case memory, after which the process's log truncates cleanly at an
// event boundary (the history stays well-formed, but verdicts on a
// truncated history are advisory — see Recorder.Truncated).
package record

import (
	"sync/atomic"

	"livetm/internal/model"
)

// MaxEventsPerProc is the hard cap on one process's buffer. A process
// that exceeds it stops recording (Truncated reports it) rather than
// growing without bound.
const MaxEventsPerProc = 1 << 22

// stamped is one event with its global order.
type stamped struct {
	seq uint64
	ev  model.Event
}

// Recorder owns the shared sequence counter and the per-process logs
// of one run.
type Recorder struct {
	seq  atomic.Uint64
	logs []*ProcLog
}

// New creates a recorder for procs processes (model.Proc identifiers 1
// through procs), each with a buffer pre-sized to capacityHint events
// (a non-positive hint picks a small default).
func New(procs, capacityHint int) *Recorder {
	if capacityHint <= 0 {
		capacityHint = 256
	}
	if capacityHint > MaxEventsPerProc {
		capacityHint = MaxEventsPerProc
	}
	r := &Recorder{logs: make([]*ProcLog, procs)}
	for i := range r.logs {
		r.logs[i] = &ProcLog{
			rec:  r,
			proc: model.Proc(i + 1),
			buf:  make([]stamped, 0, capacityHint),
			max:  MaxEventsPerProc,
		}
	}
	return r
}

// Log returns the log of process p (1-based). Each log must only be
// used from a single goroutine.
func (r *Recorder) Log(p model.Proc) *ProcLog {
	return r.logs[int(p)-1]
}

// Truncated reports whether any process hit the buffer cap and
// dropped events. A truncated history is still well-formed — each log
// cuts at an event boundary — but it is a prefix of the run per
// process, not of the whole run, so checker verdicts on it are
// advisory.
func (r *Recorder) Truncated() bool {
	for _, l := range r.logs {
		if l.full {
			return true
		}
	}
	return false
}

// Events returns the total number of recorded events.
func (r *Recorder) Events() int {
	n := 0
	for _, l := range r.logs {
		n += len(l.buf)
	}
	return n
}

// History drains the recorder: the per-process buffers merged by
// global sequence number into one history. Call it only after the run
// quiesced (no goroutine is still appending).
func (r *Recorder) History() model.History {
	heads := make([]int, len(r.logs))
	total := r.Events()
	out := make(model.History, 0, total)
	for len(out) < total {
		best := -1
		var bestSeq uint64
		for i, l := range r.logs {
			if heads[i] >= len(l.buf) {
				continue
			}
			if s := l.buf[heads[i]].seq; best < 0 || s < bestSeq {
				best, bestSeq = i, s
			}
		}
		out = append(out, r.logs[best].buf[heads[best]].ev)
		heads[best]++
	}
	return out
}

// ProcLog is one process's event buffer. It implements
// native.Observer: the engine hands it to the native retry loop, which
// calls it at every linearization point on the process's goroutine.
type ProcLog struct {
	rec  *Recorder
	proc model.Proc
	buf  []stamped
	max  int  // per-process cap (MaxEventsPerProc; lowered in tests)
	open bool // a transaction of this process is open in the log
	full bool // hit the cap; recording stopped
}

// append stamps and stores one event. Once the cap is hit the log
// stops recording entirely: dropping a tail keeps the per-process
// history a clean prefix, while dropping interior events would break
// well-formedness.
func (l *ProcLog) append(e model.Event) {
	if l.full {
		return
	}
	if len(l.buf) >= l.max {
		l.full = true
		return
	}
	l.buf = append(l.buf, stamped{seq: l.rec.seq.Add(1), ev: e})
}

// ReadInv implements native.Observer.
func (l *ProcLog) ReadInv(i int) {
	l.open = true
	l.append(model.Read(l.proc, model.TVar(i)))
}

// ReadReturn implements native.Observer.
func (l *ProcLog) ReadReturn(i int, v int64, aborted bool) {
	if aborted {
		l.open = false
		l.append(model.Abort(l.proc))
		return
	}
	l.append(model.ValueResp(l.proc, model.Value(v)))
}

// WriteInv implements native.Observer.
func (l *ProcLog) WriteInv(i int, v int64) {
	l.open = true
	l.append(model.Write(l.proc, model.TVar(i), model.Value(v)))
}

// WriteReturn implements native.Observer.
func (l *ProcLog) WriteReturn(i int, v int64, aborted bool) {
	if aborted {
		l.open = false
		l.append(model.Abort(l.proc))
		return
	}
	l.append(model.OK(l.proc))
}

// TryCommitInv implements native.Observer.
func (l *ProcLog) TryCommitInv() {
	l.open = true
	l.append(model.TryCommit(l.proc))
}

// TryCommitReturn implements native.Observer.
func (l *ProcLog) TryCommitReturn(committed bool) {
	l.open = false
	if committed {
		l.append(model.Commit(l.proc))
	} else {
		l.append(model.Abort(l.proc))
	}
}

// Abandon implements native.Observer: an attempt ended without a
// tryCommit (body error or declined commit). The native TM discards
// the attempt, recorded as a completion abort so the next attempt
// starts a fresh transaction in the history. Without an open
// transaction there is nothing to complete.
func (l *ProcLog) Abandon() {
	if !l.open {
		return
	}
	l.open = false
	l.append(model.Abort(l.proc))
}
