// Package record is the low-overhead history recorder for the native
// (real-concurrency) substrate: it turns the linearization-point
// callbacks of internal/native's Observer hooks into a well-formed
// model.History that the safety and liveness checkers can consume.
//
// The design keeps the hot path process-local. Each process appends
// events to its own chunked buffer — no lock, no cross-process cache
// traffic beyond one shared atomic sequence counter that stamps every
// event with a global order. Invocations are stamped immediately
// before the operation runs and responses immediately after it
// returns, so a stamp-order precedence between two transactions
// implies genuine real-time precedence: the drained history's
// real-time partial order is a subrelation of the true one, which
// keeps the opacity checker sound (it may only see fewer ordering
// constraints, never invented ones).
//
// Storage is a list of fixed-size chunks rather than one slice grown
// by append: a filling chunk is never reallocated or copied, and in
// streaming mode with DropStreamed set the filled chunk is recycled in
// place — a ring of reusable chunks — so a live-monitored run of any
// length allocates a bounded number of chunks per process (Chunks
// reports the total, asserted by the recorder-overhead benchmark).
//
// With Options.StreamCapacity a recorder also publishes every stamped
// event into one bounded channel as it is appended, which is how the
// live monitor (internal/engine's native adapter) observes a run while
// it executes. Draining merges the per-process buffers by sequence
// number into one model.History. A hard per-process cap bounds worst-
// case retained memory, after which the process's log truncates
// cleanly at an event boundary (the history stays well-formed, but
// verdicts on a truncated history are advisory — see
// Recorder.Truncated). Drop-mode logs retain nothing and are exempt
// from the cap: they record and stream indefinitely.
package record

import (
	"sync/atomic"

	"livetm/internal/model"
	"livetm/internal/telemetry"
)

// MaxEventsPerProc is the hard cap on one process's buffer. A process
// that exceeds it stops recording (Truncated reports it) rather than
// growing without bound.
const MaxEventsPerProc = 1 << 22

// chunkEvents is the capacity of one buffer chunk. Chunks are filled
// in place and never copied; retained mode links full chunks into a
// list, drop mode recycles them.
const chunkEvents = 4096

// stamped is one event with its global order.
type stamped struct {
	seq uint64
	ev  model.Event
}

// Streamed is one stamped event published on the live stream. Seq is
// the event's position in the recorded total order (1-based,
// contiguous across processes), which the consumer uses to restore
// that order from the channel's slightly reordered arrivals. Shard is
// the producing process's home shard (0 on an unsharded recorder) —
// producer-side accounting a sharded consumer can use to pre-route
// batches without parsing the event; the opacity checker itself
// routes by variable, so the tag is advisory for events whose
// transaction spans shards.
type Streamed struct {
	Seq   uint64
	Shard int
	Ev    model.Event
}

// streamBatch is how many events one stream send carries at most.
// Batching amortizes the channel's per-send cost off the hot path;
// a batch always flushes when its process's transaction completes, so
// the monitor never waits on a partial transaction it already has the
// completion event for.
const streamBatch = 16

// Options configures a recorder beyond New's defaults.
type Options struct {
	// CapacityHint pre-sizes each process's first chunk in events (a
	// non-positive hint picks a small default; capped at chunkEvents).
	CapacityHint int
	// StreamCapacity, when positive, publishes every appended event
	// into the bounded channel returned by Stream. Appends block when
	// the channel is full — backpressure, not loss — so the consumer
	// bounds the recorder's memory footprint, not its event rate.
	StreamCapacity int
	// Stop unblocks publishers when the stream consumer stops
	// consuming (the live monitor cancelling a run): once Stop is
	// closed, a blocked publish aborts and the log stops publishing
	// (local recording continues).
	Stop <-chan struct{}
	// DropStreamed recycles each process's chunk once filled instead
	// of retaining it: the streamed copy is the only full record, so
	// History returns nil and steady-state allocation is capped at the
	// chunk ring. Only meaningful with StreamCapacity set.
	DropStreamed bool
	// ShardOf, when set, tags every published Streamed event with the
	// producing process's home shard (see Streamed.Shard). Nil leaves
	// the tag 0.
	ShardOf func(p model.Proc) int
	// Metrics, when non-nil, receives the recorder's telemetry. All
	// fields must be set; a nil Metrics records into bare (unregistered)
	// instruments at identical cost, so the hot path has no nil checks.
	Metrics *Metrics
}

// Metrics is the recorder's pre-resolved telemetry handle bundle.
type Metrics struct {
	// Events counts events stamped into the per-process logs.
	Events *telemetry.Counter
	// Chunks tracks buffer chunks currently allocated (mirrors Chunks).
	Chunks *telemetry.Gauge
	// Recycled counts drop-mode ring-chunk reuses.
	Recycled *telemetry.Counter
	// Dropped counts events the live stream lost after Stop fired and
	// muted a blocked publisher.
	Dropped *telemetry.Counter
}

// bareMetrics is the no-registry default: valid zero-value instruments
// nobody reads.
func bareMetrics() *Metrics {
	return &Metrics{
		Events:   &telemetry.Counter{},
		Chunks:   &telemetry.Gauge{},
		Recycled: &telemetry.Counter{},
		Dropped:  &telemetry.Counter{},
	}
}

// Recorder owns the shared sequence counter and the per-process logs
// of one run.
type Recorder struct {
	seq    atomic.Uint64
	logs   []*ProcLog
	stream chan []Streamed
	stop   <-chan struct{}
	// chunks and truncated aggregate the per-log figures atomically so
	// Chunks and Truncated can be snapshotted mid-run (a live session's
	// Stats) while the logs are still appending.
	chunks    atomic.Int64
	truncated atomic.Bool
	met       *Metrics
}

// New creates a recorder for procs processes (model.Proc identifiers 1
// through procs), each with a buffer pre-sized to capacityHint events.
func New(procs, capacityHint int) *Recorder {
	return NewWithOptions(procs, Options{CapacityHint: capacityHint})
}

// NewWithOptions creates a recorder with streaming and retention
// control.
func NewWithOptions(procs int, o Options) *Recorder {
	hint := o.CapacityHint
	if hint <= 0 {
		hint = 256
	}
	if hint > chunkEvents {
		hint = chunkEvents
	}
	r := &Recorder{logs: make([]*ProcLog, procs), stop: o.Stop, met: o.Metrics}
	if r.met == nil {
		r.met = bareMetrics()
	}
	if o.StreamCapacity > 0 {
		batches := o.StreamCapacity / streamBatch
		if batches < 1 {
			batches = 1
		}
		r.stream = make(chan []Streamed, batches)
	}
	for i := range r.logs {
		l := &ProcLog{
			rec:  r,
			proc: model.Proc(i + 1),
			max:  MaxEventsPerProc,
			drop: o.DropStreamed && r.stream != nil,
		}
		if o.ShardOf != nil {
			l.shard = o.ShardOf(l.proc)
		}
		l.cur = l.newChunk(hint)
		r.logs[i] = l
	}
	return r
}

// Stream returns the live event channel (nil unless the recorder was
// created with Options.StreamCapacity). Each receive is one batch of
// up to streamBatch events from a single process. The consumer must
// restore the total order by Streamed.Seq: batches from different
// processes can overtake each other between stamping and publishing,
// by at most the process count plus the channel's buffered events.
func (r *Recorder) Stream() <-chan []Streamed { return r.stream }

// CloseStream flushes every log's partial batch and closes the live
// channel so the consumer's drain loop terminates. Call it only after
// every producing goroutine has quiesced.
func (r *Recorder) CloseStream() {
	if r.stream == nil {
		return
	}
	for _, l := range r.logs {
		l.flushStream()
	}
	close(r.stream)
}

// Log returns the log of process p (1-based). Each log must only be
// used from a single goroutine.
func (r *Recorder) Log(p model.Proc) *ProcLog {
	return r.logs[int(p)-1]
}

// Truncated reports whether any process hit the buffer cap and
// dropped events. A truncated history is still well-formed — each log
// cuts at an event boundary — but it is a prefix of the run per
// process, not of the whole run, so checker verdicts on it are
// advisory. Safe to call while the run is still recording.
func (r *Recorder) Truncated() bool {
	return r.truncated.Load()
}

// Events returns the total number of recorded events (including
// events already recycled in drop mode).
func (r *Recorder) Events() int {
	n := 0
	for _, l := range r.logs {
		n += l.count
	}
	return n
}

// Chunks returns the total number of buffer chunks allocated across
// all processes — the recorder's allocation figure. In drop mode it
// stays at one ring chunk per process no matter how long the run is.
// Safe to call while the run is still recording.
func (r *Recorder) Chunks() int {
	return int(r.chunks.Load())
}

// History drains the recorder: the per-process buffers merged by
// global sequence number into one history. Call it only after the run
// quiesced (no goroutine is still appending). A recorder in drop mode
// retains nothing and returns nil — the stream was the record.
func (r *Recorder) History() model.History {
	bufs := make([][]stamped, len(r.logs))
	total := 0
	for i, l := range r.logs {
		if l.drop {
			return nil
		}
		bufs[i] = l.all()
		total += len(bufs[i])
	}
	heads := make([]int, len(bufs))
	out := make(model.History, 0, total)
	for len(out) < total {
		best := -1
		var bestSeq uint64
		for i, buf := range bufs {
			if heads[i] >= len(buf) {
				continue
			}
			if s := buf[heads[i]].seq; best < 0 || s < bestSeq {
				best, bestSeq = i, s
			}
		}
		out = append(out, bufs[best][heads[best]].ev)
		heads[best]++
	}
	return out
}

// ProcLog is one process's event buffer. It implements
// native.Observer: the engine hands it to the native retry loop, which
// calls it at every linearization point on the process's goroutine.
type ProcLog struct {
	rec   *Recorder
	proc  model.Proc
	done  [][]stamped // filled chunks, in order (retained mode)
	cur   []stamped   // chunk being filled
	count int         // events recorded over the log's lifetime
	max   int         // per-process cap (MaxEventsPerProc; lowered in tests)
	open  bool        // a transaction of this process is open in the log
	full  bool        // hit the cap; recording stopped
	drop  bool        // recycle filled chunks instead of retaining them
	mute  bool        // stop fired during a publish; no further sends
	shard int         // home shard stamped on streamed events
	batch []Streamed  // events stamped but not yet published
}

func (l *ProcLog) newChunk(capacity int) []stamped {
	l.rec.chunks.Add(1)
	l.rec.met.Chunks.Add(1)
	return make([]stamped, 0, capacity)
}

// all returns the log's retained events in order as one slice.
func (l *ProcLog) all() []stamped {
	out := make([]stamped, 0, l.count)
	for _, c := range l.done {
		out = append(out, c...)
	}
	return append(out, l.cur...)
}

// append stamps, stores and publishes one event. Once the cap is hit
// the log stops recording entirely (after flushing what was already
// stamped): dropping a tail keeps the per-process history a clean
// prefix, while dropping interior events would break well-formedness.
func (l *ProcLog) append(e model.Event) {
	if l.full {
		return
	}
	// The cap protects retained memory; a drop-mode log recycles its
	// ring chunk and retains nothing, so it records (and streams)
	// forever — live monitoring must not silently go blind at 2^22
	// events per process.
	if !l.drop && l.count >= l.max {
		l.full = true
		l.rec.truncated.Store(true)
		l.flushStream()
		return
	}
	if len(l.cur) == cap(l.cur) {
		if l.drop {
			l.cur = l.cur[:0] // the streamed copy is the record; reuse
			l.rec.met.Recycled.Inc()
		} else {
			l.done = append(l.done, l.cur)
			l.cur = l.newChunk(chunkEvents)
		}
	}
	s := stamped{seq: l.rec.seq.Add(1), ev: e}
	l.cur = append(l.cur, s)
	l.count++
	l.rec.met.Events.Inc()
	l.publish(s)
}

// publish batches the stamped event for the live stream. The batch
// flushes when full or when the event completes a transaction, so the
// monitor always sees whole transactions promptly while the channel
// pays one send per batch, not per event.
func (l *ProcLog) publish(s stamped) {
	if l.rec.stream == nil {
		return
	}
	if l.mute {
		l.rec.met.Dropped.Inc()
		return
	}
	if l.batch == nil {
		l.batch = make([]Streamed, 0, streamBatch)
	}
	l.batch = append(l.batch, Streamed{Seq: s.seq, Shard: l.shard, Ev: s.ev})
	if len(l.batch) == cap(l.batch) || s.ev.Kind == model.RespCommit || s.ev.Kind == model.RespAbort {
		l.flushStream()
	}
}

// flushStream sends the pending batch, blocking for backpressure; a
// fired stop signal mutes the log instead of blocking forever on a
// departed consumer.
func (l *ProcLog) flushStream() {
	r := l.rec
	if r.stream == nil || l.mute || len(l.batch) == 0 {
		return
	}
	out := l.batch
	l.batch = make([]Streamed, 0, streamBatch)
	if r.stop == nil {
		r.stream <- out
		return
	}
	select {
	case r.stream <- out:
	case <-r.stop:
		l.mute = true
		r.met.Dropped.Add(uint64(len(out)))
	}
}

// ReadInv implements native.Observer.
func (l *ProcLog) ReadInv(i int) {
	l.open = true
	l.append(model.Read(l.proc, model.TVar(i)))
}

// ReadReturn implements native.Observer.
func (l *ProcLog) ReadReturn(i int, v int64, aborted bool) {
	if aborted {
		l.open = false
		l.append(model.Abort(l.proc))
		return
	}
	l.append(model.ValueResp(l.proc, model.Value(v)))
}

// WriteInv implements native.Observer.
func (l *ProcLog) WriteInv(i int, v int64) {
	l.open = true
	l.append(model.Write(l.proc, model.TVar(i), model.Value(v)))
}

// WriteReturn implements native.Observer.
func (l *ProcLog) WriteReturn(i int, v int64, aborted bool) {
	if aborted {
		l.open = false
		l.append(model.Abort(l.proc))
		return
	}
	l.append(model.OK(l.proc))
}

// TryCommitInv implements native.Observer.
func (l *ProcLog) TryCommitInv() {
	l.open = true
	l.append(model.TryCommit(l.proc))
}

// TryCommitReturn implements native.Observer.
func (l *ProcLog) TryCommitReturn(committed bool) {
	l.open = false
	if committed {
		l.append(model.Commit(l.proc))
	} else {
		l.append(model.Abort(l.proc))
	}
}

// Abandon implements native.Observer: an attempt ended without a
// tryCommit (body error or declined commit). The native TM discards
// the attempt, recorded as a completion abort so the next attempt
// starts a fresh transaction in the history. Without an open
// transaction there is nothing to complete.
func (l *ProcLog) Abandon() {
	if !l.open {
		return
	}
	l.open = false
	l.append(model.Abort(l.proc))
}
