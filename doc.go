// Package livetm reproduces "On the Liveness of Transactional Memory"
// (Bushkov, Guerraoui, Kapałka; PODC 2012) as an executable Go
// library: the formal model of TM histories, decision procedures for
// opacity and strict serializability, the paper's TM-liveness
// properties over eventually-periodic infinite histories, the Fgp
// global-progress automaton, the impossibility adversaries of Theorem
// 1, and the TM implementations (global lock, TinySTM-, TL2-, DSTM-,
// NOrec-, OSTM-style, 2PL, and Fgp) classified under crash and
// parasitic fault injection.
//
// The TMs run on two substrates behind one engine API
// (internal/engine): a deterministic cooperative simulator
// (internal/sim + internal/stm/...) for the paper's adversarial
// liveness and opacity experiments, and real-concurrency sync/atomic
// implementations (internal/native) for the wall-clock scalability
// argument of footnote 1. The API is session-first, matching the
// paper's open-world framing: engine.Open starts a long-lived TM
// session with a worker pool, clients submit individual transactions
// (Session.Exec blocking, Session.Submit async), Stats snapshots
// counters mid-flight, and Close drains and returns the resident
// monitor's final report; the batch engine.Run is a thin wrapper over
// one session, and `livetm serve` runs a native TM as a SIGTERM-clean
// soak service on the same core. The submission surface is
// transport-agnostic: Session satisfies engine.Submitter, and
// internal/server puts any Submitter on the wire as an HTTP/JSON API
// (blocking programs, async submit/wait, interactive transactions,
// remote drain) behind a pluggable Codec, with per-client fair
// admission — a hard in-flight cap split fairly among active clients,
// refusing with ErrOverloaded/429 plus a Retry-After hint instead of
// queueing, evicting idle client accounts after a grace period so
// ephemeral client names cannot grow server state without bound.
// internal/client is the matching Go client; engine error
// sentinels round-trip the wire as stable codes, so errors.Is works
// on both ends. `livetm serve -listen` serves a session remotely
// (telemetry on the same listener), `livetm client` drives it — load
// generation or a Theorem 1 adversary strategy running as a real
// network client — and SIGTERM or a remote drain returns the
// monitor's final report. Both substrates record histories:
// native runs are observed at their linearization points through
// internal/record (per-process chunked buffers ordered by one atomic
// sequence counter), and internal/monitor checks any history online —
// a streaming segmented opacity check plus per-process progress
// accounting classified against the liveness lattice. Monitoring also
// runs in-process: a live session streams events through a bounded
// channel into the monitor while transactions execute, stops the
// session mid-flight on a safety violation, and feeds the measured
// per-process starvation back into the native retry loop's backoff
// (starvation-aware contention management). Cut-starved streams
// degrade to an explicit approximate verdict at forced serialization
// frontiers — final snapshots propagate across each frontier, and a
// transaction carried open across one has its unverifiable reads
// waived — instead of refusing.
//
// Monitored sessions scale by sharding the keyspace end to end
// (SessionConfig.Shards): the variables split into contiguous shards,
// each worker group serves its own shard, a quiescent cut pauses only
// one shard's workers, and the monitor checks the shards in parallel
// streaming lanes (safety.ShardedChecker), merging lanes only around
// transactions that actually span shards. A disjoint workload
// therefore checks its shards concurrently at shard-local cut cost;
// a session whose transactions cross shards degrades the cuts to
// global ones but keeps the same verdict — the sharded checker is
// verdict-equivalent to the single-lane one by construction (property
// tested). The workload matrix (internal/workload) is declared once
// and executed against every (algorithm, substrate) pair, optionally
// recording, checking, live-monitoring, or shard-sweeping each cell
// (per-cell liveness class, recorder overhead, and per-shard cut
// latency and checker-lane segments in the schema-v3 artifact); see
// internal/engine's package documentation for when to use which
// substrate.
//
// Every layer above is observable through one low-overhead telemetry
// registry (internal/telemetry): dependency-free atomic counters,
// gauges, and fixed log-bucketed histograms whose hot-path update is
// a single atomic add. Passing SessionConfig.Telemetry threads one
// registry through the native retry loop (starts, commits, aborts by
// cause, retries, retry-latency and backoff-wait histograms per
// algorithm), the session worker pool (queue depths, Exec latency,
// admissions), the quiescent cuts (per-shard pause histograms — the
// same instruments Stats.CutLatency/ShardCuts fold, so Stats is a
// view of the registry, not a second set of counters), the recorder
// (events, chunks, recycled, stream drops), the checker lanes
// (segments, lane lag, forced cuts, relaxed straddlers), and the
// monitor (live liveness class, per-process starvation, backoff
// bias). `livetm serve -metrics ADDR` exposes the registry live as
// Prometheus text, a JSON snapshot, and pprof; `-flight FILE`
// appends periodic JSONL snapshots. A nil registry degrades to bare
// instruments backing Stats alone, and the instrumented-vs-bare cost
// ratio is benchmarked and CI-gated against
// telemetry.OverheadBudgetRatio.
//
// Traffic beyond the closed-loop matrix comes from the open-loop
// scenario engine (internal/loadgen): declarative JSON scenarios —
// Poisson or bursty arrivals at a fixed seed, weighted mixes of
// workload-matrix cells compiled to wire programs, warmup/inject/
// recovery phases with the Theorem 1 adversaries as inject faults,
// and ramp schedules growing the worker pool under load — drive an
// in-process session or a served one through the same Target surface,
// with jittered, hint-flooring retry backoff (client.Backoff) on
// overload refusals. The whole schedule is a pure function of
// (scenario file, seed); each run emits a provenance-stamped artifact
// (scenario hash, plan digest, git describe, per-phase p50/p95/p99,
// abort and refusal rates, fault outcomes, liveness class,
// checked-throughput) that `livetm loadgen gate` judges against the
// scenario's release gates and the BENCH trajectory — the CI
// regression gate.
//
// Inject phases can layer several adversary strategies at once
// (Phase.Faults): each named strategy runs its own concurrent episode
// loop against the same served session, producing compound failure
// modes — a crash variant riding alongside a parasitic one — that a
// single injector cannot; scenarios/mixed-faults.json is the CI'd
// example, and the artifact reports one FaultResult per layer.
//
// The invariants the layers above rely on — typed-atomic discipline,
// ascending lock-slice sweeps, wire round-tripping of error
// sentinels, deterministic plan compilation, finite telemetry label
// spaces — are enforced at compile time by internal/lint, a
// zero-dependency static-analysis suite (go list + go/parser +
// go/types) with five domain analyzers; `livetm-lint ./...` must be
// clean (CI runs it, and also asserts a seeded violation fails it),
// with //lint:allow(rule) reason as the only suppression. See
// internal/lint's package documentation for the rule catalog.
//
// The impossibility adversaries are substrate-agnostic too: the
// strategy logic of Algorithms 1 and 2 (internal/adversary) runs once
// against a driver interface, with a simulated backend stepping the
// deterministic scheduler and a native backend gating two real
// goroutines through the linearization-point hooks while the monitor
// watches the stream. `livetm adversary -engine native-tl2` starves a
// production-style TM live; `livetm adversary -matrix` runs every
// strategy variant against every native algorithm and its simulated
// counterpart and writes the cross-substrate starvation-comparison
// artifact (rounds-to-first-starvation, starvation-interval
// distributions, backoff-bias trajectories) alongside
// BENCH_native.json.
//
// The implementation lives under internal/; see README.md for the
// architecture, cmd/figures and cmd/livetm for the experiment
// drivers, and bench_test.go in this directory for the benchmark
// harness that regenerates every figure of the paper and writes the
// BENCH_native.json performance-trajectory artifact.
package livetm
