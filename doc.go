// Package livetm reproduces "On the Liveness of Transactional Memory"
// (Bushkov, Guerraoui, Kapałka; PODC 2012) as an executable Go
// library: the formal model of TM histories, decision procedures for
// opacity and strict serializability, the paper's TM-liveness
// properties over eventually-periodic infinite histories, the Fgp
// global-progress automaton, the impossibility adversaries of Theorem
// 1, and six TM implementations (global lock, TinySTM-, TL2-, DSTM-,
// OSTM-style, and Fgp) classified under crash and parasitic fault
// injection.
//
// The implementation lives under internal/; see README.md for the
// architecture, cmd/figures and cmd/livetm for the experiment
// drivers, and bench_test.go in this directory for the benchmark
// harness that regenerates every figure of the paper.
package livetm
