module livetm

go 1.24
